package alert

import (
	"errors"
	"testing"
	"time"
)

// chanSink captures delivered events.
type chanSink struct{ ch chan Event }

func newChanSink() *chanSink            { return &chanSink{ch: make(chan Event, 1024)} }
func (s *chanSink) Send(ev Event) error { s.ch <- ev; return nil }

// blockedSink blocks every Send until released — the pathological sink the
// dispatcher must survive.
type blockedSink struct {
	entered chan struct{}
	release chan struct{}
}

func newBlockedSink() *blockedSink {
	return &blockedSink{entered: make(chan struct{}, 1024), release: make(chan struct{})}
}

func (s *blockedSink) Send(Event) error {
	s.entered <- struct{}{}
	<-s.release
	return nil
}

// failSink errors every call.
type failSink struct{ calls chan struct{} }

func (s *failSink) Send(Event) error {
	if s.calls != nil {
		s.calls <- struct{}{}
	}
	return errors.New("sink down")
}

func testEvent(domain string) Event {
	return Event{
		Kind: KindConfirmed, Severity: SevCritical, Domain: domain,
		Hosts: []string{"h1"}, Reason: "c&c", Score: 0.9,
		Time: time.Date(2014, 2, 20, 12, 0, 0, 0, time.UTC),
	}
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestBlockedSinkDropsExactly: with one event wedged in Send and the queue
// full, every further publish overflows and is counted — exactly, nothing
// silent — and Publish itself never blocks.
func TestBlockedSinkDropsExactly(t *testing.T) {
	sink := newBlockedSink()
	d, err := NewDispatcher(Config{QueueSize: 2, SuppressMinutes: -1, CloseTimeoutMillis: 50},
		map[string]Sink{"wedged": sink})
	if err != nil {
		t.Fatal(err)
	}

	d.Publish(testEvent("a.example"))
	<-sink.entered // first event is now wedged inside Send
	d.Publish(testEvent("b.example"))
	d.Publish(testEvent("c.example")) // queue now full

	const overflow = 5
	start := time.Now()
	for i := 0; i < overflow; i++ {
		d.Publish(testEvent("d.example"))
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("Publish against a wedged sink took %v", took)
	}

	st := d.Stats()
	if st.Dropped != overflow {
		t.Fatalf("dropped = %d, want exactly %d", st.Dropped, overflow)
	}
	if len(st.Sinks) != 1 || st.Sinks[0].QueueDepth != 2 || st.Sinks[0].QueueCap != 2 {
		t.Fatalf("sink stats %+v, want full queue 2/2", st.Sinks)
	}
	if st.Published != 3+overflow || st.Matched != 3+overflow {
		t.Fatalf("published/matched = %d/%d", st.Published, st.Matched)
	}

	// Releasing the sink drains the queue: the three accepted events land.
	close(sink.release)
	waitFor(t, "queued events to drain", func() bool { return d.Stats().Sent == 3 })
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBlockedSinkCloseBounded: Close must not be held hostage by a Send
// that never returns.
func TestBlockedSinkCloseBounded(t *testing.T) {
	sink := newBlockedSink()
	d, err := NewDispatcher(Config{QueueSize: 2, SuppressMinutes: -1, CloseTimeoutMillis: 50},
		map[string]Sink{"wedged": sink})
	if err != nil {
		t.Fatal(err)
	}
	d.Publish(testEvent("a.example"))
	<-sink.entered
	start := time.Now()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("Close took %v against a wedged sink", took)
	}
	d.Publish(testEvent("late.example")) // after Close: counted, not delivered, no panic
	close(sink.release)
}

// TestFailingSinkRetriesThenDrops: a sink erroring every call consumes the
// retry budget with backoff, then the event is dropped — visibly.
func TestFailingSinkRetriesThenDrops(t *testing.T) {
	d, err := NewDispatcher(
		Config{QueueSize: 4, SuppressMinutes: -1, MaxRetries: 2, RetryBackoffMillis: 1},
		map[string]Sink{"down": &failSink{}})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.Publish(testEvent("a.example"))
	waitFor(t, "delivery to be abandoned", func() bool { return d.Stats().Dropped == 1 })
	st := d.Stats()
	if st.Sent != 0 || st.Sinks[0].Retries != 2 {
		t.Fatalf("stats %+v, want 0 sent and exactly 2 retries", st)
	}
	if st.Sinks[0].LastError == "" {
		t.Fatal("sink failure left no visible last error")
	}
}

// TestOneDeadSinkDoesNotStallOthers: a wedged sink must not delay delivery
// through a healthy one.
func TestOneDeadSinkDoesNotStallOthers(t *testing.T) {
	dead := newBlockedSink()
	live := newChanSink()
	d, err := NewDispatcher(Config{QueueSize: 16, SuppressMinutes: -1, CloseTimeoutMillis: 50},
		map[string]Sink{"dead": dead, "live": live})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		d.Publish(testEvent("a.example"))
	}
	waitFor(t, "healthy sink deliveries", func() bool { return len(live.ch) == 10 })
	close(dead.release)
	d.Close()
}

// TestSuppressionWindow: a repeat of the same (kind, domain, hosts) inside
// the window is one alert; past the window it fires again.
func TestSuppressionWindow(t *testing.T) {
	sink := newChanSink()
	d, err := NewDispatcher(Config{QueueSize: 16, SuppressMinutes: 10},
		map[string]Sink{"soc": sink})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	clock := time.Date(2014, 2, 20, 12, 0, 0, 0, time.UTC)
	d.now = func() time.Time { return clock }

	d.Publish(testEvent("a.example"))
	d.Publish(testEvent("a.example")) // duplicate, same instant
	clock = clock.Add(9 * time.Minute)
	d.Publish(testEvent("a.example")) // still inside the window
	d.Publish(testEvent("b.example")) // different domain: not a duplicate
	clock = clock.Add(2 * time.Minute)
	d.Publish(testEvent("a.example")) // 11m after first: window expired

	waitFor(t, "deliveries", func() bool { return d.Stats().Sent == 3 })
	st := d.Stats()
	if st.Suppressed != 2 {
		t.Fatalf("suppressed = %d, want 2", st.Suppressed)
	}
}

// TestRuleRouting: events go only to the sinks of matching rules, and an
// event matching no rule goes nowhere.
func TestRuleRouting(t *testing.T) {
	critical := newChanSink()
	audit := newChanSink()
	d, err := NewDispatcher(Config{
		QueueSize: 16, SuppressMinutes: -1,
		Rules: []Rule{
			{Name: "page", MinSeverity: SevCritical, Sinks: []string{"critical"}},
			{Name: "log-confirmed", Kinds: []EventKind{KindConfirmed}, Sinks: []string{"audit"}},
		},
	}, map[string]Sink{"critical": critical, "audit": audit})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	d.Publish(testEvent("a.example")) // confirmed+critical: both rules
	prov := testEvent("b.example")
	prov.Kind = KindProvisional
	prov.Severity = SevWarning
	d.Publish(prov) // matches neither rule
	health := HealthEvent(SevCritical, time.Now(), "preview failed")
	d.Publish(health) // critical: page rule only

	waitFor(t, "rule-routed deliveries", func() bool { return d.Stats().Sent == 3 })
	st := d.Stats()
	if st.Published != 3 || st.Matched != 2 {
		t.Fatalf("published/matched = %d/%d, want 3/2", st.Published, st.Matched)
	}
	if len(critical.ch) != 2 || len(audit.ch) != 1 {
		t.Fatalf("critical got %d, audit got %d; want 2/1", len(critical.ch), len(audit.ch))
	}
}

// TestDispatcherRejectsBadWiring: unknown sinks and sinkless rules are
// construction-time errors, not silent dead routes.
func TestDispatcherRejectsBadWiring(t *testing.T) {
	sinks := map[string]Sink{"soc": newChanSink()}
	if _, err := NewDispatcher(Config{Rules: []Rule{{Sinks: []string{"nope"}}}}, sinks); err == nil {
		t.Error("rule to unknown sink accepted")
	}
	if _, err := NewDispatcher(Config{Rules: []Rule{{Name: "r"}}}, sinks); err == nil {
		t.Error("sinkless rule accepted")
	}
	if _, err := NewDispatcher(Config{Rules: []Rule{{Sinks: []string{"soc"}, DomainPattern: "[bad"}}}, sinks); err == nil {
		t.Error("malformed domain pattern accepted")
	}
	if _, err := NewDispatcher(Config{}, nil); err == nil {
		t.Error("sinkless dispatcher accepted")
	}
}

// BenchmarkPublishBlockedSink guards the backpressure contract: publishing
// against a permanently wedged sink with a full queue is a counter bump,
// not a stall.
func BenchmarkPublishBlockedSink(b *testing.B) {
	sink := newBlockedSink()
	d, err := NewDispatcher(Config{QueueSize: 2, SuppressMinutes: -1, CloseTimeoutMillis: 50},
		map[string]Sink{"wedged": sink})
	if err != nil {
		b.Fatal(err)
	}
	ev := testEvent("bench.example")
	d.Publish(ev)
	<-sink.entered
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Publish(ev)
	}
	b.StopTimer()
	close(sink.release)
	d.Close()
}
