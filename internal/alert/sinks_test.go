package alert

import (
	"bufio"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestWebhookFlakyBackoffReconnect: the dispatcher's retry loop rides out a
// webhook that fails its first calls, and the event lands exactly once.
func TestWebhookFlakyBackoffReconnect(t *testing.T) {
	var calls atomic.Int64
	var got atomic.Pointer[Event]
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 3 {
			http.Error(w, "still booting", http.StatusInternalServerError)
			return
		}
		var ev Event
		if err := json.NewDecoder(r.Body).Decode(&ev); err != nil {
			t.Errorf("webhook body: %v", err)
		}
		got.Store(&ev)
		w.WriteHeader(http.StatusAccepted)
	}))
	defer srv.Close()

	d, err := NewDispatcher(
		Config{QueueSize: 4, SuppressMinutes: -1, MaxRetries: 6, RetryBackoffMillis: 1},
		map[string]Sink{"hook": NewWebhookSink(srv.URL)})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	d.Publish(testEvent("flaky.example"))
	waitFor(t, "flaky webhook delivery", func() bool { return d.Stats().Sent == 1 })
	st := d.Stats()
	if st.Dropped != 0 || st.Sinks[0].Retries != 3 {
		t.Fatalf("stats %+v, want 0 dropped and exactly 3 retries", st)
	}
	if st.Sinks[0].LastError == "" {
		t.Fatal("transient failures left no last error breadcrumb")
	}
	ev := got.Load()
	if ev == nil || ev.Domain != "flaky.example" || ev.Kind != KindConfirmed {
		t.Fatalf("delivered event %+v", ev)
	}
}

func TestWebhookRejectsNon2xx(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no", http.StatusForbidden)
	}))
	defer srv.Close()
	if err := NewWebhookSink(srv.URL).Send(testEvent("a.example")); err == nil {
		t.Fatal("403 response accepted as delivery")
	}
}

func TestFileSinkNDJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alerts.ndjson")
	s, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []string{"a.example", "b.example"} {
		if err := s.Send(testEvent(d)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d NDJSON lines, want 2", len(lines))
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatalf("line 2 is not JSON: %v", err)
	}
	if ev.Domain != "b.example" || ev.Severity != SevCritical {
		t.Fatalf("decoded %+v", ev)
	}
}

func ioReadFull(r *bufio.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// checkSyslogMessage asserts the RFC 5424 shape and returns the embedded
// JSON event.
func checkSyslogMessage(t *testing.T, msg string) Event {
	t.Helper()
	if !strings.HasPrefix(msg, "<116>1 ") { // facility 14, severity 4 (warning)
		t.Fatalf("message %q lacks the <pri>1 header", msg)
	}
	fields := strings.SplitN(msg, " ", 8)
	if len(fields) != 8 {
		t.Fatalf("message %q has %d header fields, want 7 + body", msg, len(fields))
	}
	if _, err := time.Parse("2006-01-02T15:04:05.000Z", fields[1]); err != nil {
		t.Fatalf("timestamp %q: %v", fields[1], err)
	}
	if fields[3] != "reprod" {
		t.Fatalf("app-name %q, want reprod", fields[3])
	}
	var ev Event
	if err := json.Unmarshal([]byte(fields[7]), &ev); err != nil {
		t.Fatalf("syslog body is not the event JSON: %v (%q)", err, fields[7])
	}
	return ev
}

func warningEvent(domain string) Event {
	ev := testEvent(domain)
	ev.Severity = SevWarning
	ev.Reason = "similarity"
	return ev
}

func TestSyslogTCPFramingAndReconnect(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	frames := make(chan string, 16)
	conns := make(chan net.Conn, 16)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conns <- conn
			go func(c net.Conn) {
				r := bufio.NewReader(c)
				for {
					head, err := r.ReadString(' ')
					if err != nil {
						return
					}
					n, err := strconv.Atoi(strings.TrimSpace(head))
					if err != nil {
						return
					}
					buf := make([]byte, n)
					if _, err := ioReadFull(r, buf); err != nil {
						return
					}
					frames <- string(buf)
				}
			}(conn)
		}
	}()

	s, err := NewSyslogSink("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Send(warningEvent("first.example")); err != nil {
		t.Fatal(err)
	}
	var msg string
	select {
	case msg = <-frames:
	case <-time.After(5 * time.Second):
		t.Fatal("no frame received")
	}
	if ev := checkSyslogMessage(t, msg); ev.Domain != "first.example" {
		t.Fatalf("frame carried %+v", ev)
	}

	// Kill the server side of the connection; the sink must notice on some
	// subsequent write, drop its connection, and re-dial — at which point a
	// retried Send lands on a fresh accepted connection.
	(<-conns).Close()
	sawError := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := s.Send(warningEvent("second.example")); err != nil {
			sawError = true // connection loss surfaced; next Send re-dials
		} else if sawError {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawError {
		t.Fatal("write to a server-closed connection never errored")
	}
	waitFor(t, "frame on the reconnected session", func() bool {
		for {
			select {
			case msg := <-frames:
				if checkSyslogMessage(t, msg).Domain == "second.example" {
					return true
				}
			default:
				return false
			}
		}
	})
}

func TestSyslogUDP(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	s, err := NewSyslogSink("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Send(warningEvent("udp.example")); err != nil {
		t.Fatal(err)
	}
	pc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64<<10)
	n, _, err := pc.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if ev := checkSyslogMessage(t, string(buf[:n])); ev.Domain != "udp.example" {
		t.Fatalf("datagram carried %+v", ev)
	}
}

func TestSyslogRejectsBadTransport(t *testing.T) {
	if _, err := NewSyslogSink("unix", "/tmp/x"); err == nil {
		t.Error("unix transport accepted")
	}
	if _, err := NewSyslogSink("tcp", ""); err == nil {
		t.Error("empty address accepted")
	}
}
