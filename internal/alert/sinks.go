package alert

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"time"
)

// Sink delivers one event to an external receiver. Send is called from the
// sink's own dispatcher goroutine, never concurrently with itself; an error
// return means the event was not delivered and the dispatcher may retry the
// same event. Sinks that hold a connection should drop it on error and
// re-establish it on the next Send, so a retry doubles as a reconnect.
// A sink that also implements io.Closer is closed by Dispatcher.Close.
type Sink interface {
	Send(Event) error
}

// ---- file / stdout ----

// FileSink appends events as NDJSON (one JSON object per line) to a writer
// or file — the same shape the daily reports use, greppable and tailable.
type FileSink struct {
	mu sync.Mutex
	w  io.Writer
	c  io.Closer // nil for caller-owned writers
}

// NewFileSink opens (appending, creating) the NDJSON file at path.
func NewFileSink(path string) (*FileSink, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("alert: file sink: %w", err)
	}
	return &FileSink{w: f, c: f}, nil
}

// NewWriterSink wraps a caller-owned writer (e.g. os.Stdout) as an NDJSON
// sink; the writer is not closed by Close.
func NewWriterSink(w io.Writer) *FileSink {
	return &FileSink{w: w}
}

// Send appends one NDJSON line.
func (s *FileSink) Send(ev Event) error {
	b, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("alert: encode event: %w", err)
	}
	b = append(b, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.w.Write(b); err != nil {
		return fmt.Errorf("alert: file sink write: %w", err)
	}
	return nil
}

// Close closes the underlying file, if this sink owns one.
func (s *FileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.c == nil {
		return nil
	}
	err := s.c.Close()
	s.c = nil
	return err
}

// ---- webhook ----

// WebhookSink POSTs each event as a JSON document. Any 2xx response is a
// delivery; anything else (including transport errors) is retryable.
type WebhookSink struct {
	URL    string
	Client *http.Client
}

// NewWebhookSink builds a webhook sink with a bounded request timeout, so a
// hung endpoint turns into a retryable error instead of a stuck goroutine.
func NewWebhookSink(url string) *WebhookSink {
	return &WebhookSink{URL: url, Client: &http.Client{Timeout: 10 * time.Second}}
}

// Send POSTs the event.
func (s *WebhookSink) Send(ev Event) error {
	b, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("alert: encode event: %w", err)
	}
	client := s.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Post(s.URL, "application/json", bytes.NewReader(b))
	if err != nil {
		return fmt.Errorf("alert: webhook: %w", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("alert: webhook: %s returned %s", s.URL, resp.Status)
	}
	return nil
}

// ---- syslog ----

// SyslogSink writes RFC 5424 messages over TCP (with RFC 6587
// octet-counting framing) or UDP (one message per datagram). The
// connection is dialed lazily on first Send and dropped on any write
// error, so the dispatcher's retry loop is also the reconnect loop.
type SyslogSink struct {
	// Network is "tcp" or "udp"; Address is host:port.
	Network, Address string
	// App is the RFC 5424 APP-NAME field (default "reprod").
	App string
	// DialTimeout bounds connection attempts (default 5s).
	DialTimeout time.Duration

	mu       sync.Mutex
	conn     net.Conn
	hostname string
}

// NewSyslogSink builds a syslog sink for the given transport and address.
func NewSyslogSink(network, address string) (*SyslogSink, error) {
	switch network {
	case "tcp", "udp":
	case "":
		network = "udp"
	default:
		return nil, fmt.Errorf("alert: syslog: unsupported network %q", network)
	}
	if address == "" {
		return nil, fmt.Errorf("alert: syslog: empty address")
	}
	return &SyslogSink{Network: network, Address: address}, nil
}

// priority maps the event severity onto syslog facility 14 (log alert)
// with the standard severity codes.
func (s *SyslogSink) priority(ev Event) int {
	sev := 6 // informational
	switch ev.Severity {
	case SevWarning:
		sev = 4
	case SevCritical:
		sev = 2
	}
	return 14*8 + sev
}

// format renders one RFC 5424 message; the structured-data field is NILVALUE
// and the message body is the event's JSON document.
func (s *SyslogSink) format(ev Event) ([]byte, error) {
	b, err := json.Marshal(ev)
	if err != nil {
		return nil, fmt.Errorf("alert: encode event: %w", err)
	}
	app := s.App
	if app == "" {
		app = "reprod"
	}
	if s.hostname == "" {
		if hn, err := os.Hostname(); err == nil && hn != "" {
			s.hostname = hn
		} else {
			s.hostname = "-"
		}
	}
	ts := ev.Time.UTC().Format("2006-01-02T15:04:05.000Z")
	msg := fmt.Sprintf("<%d>1 %s %s %s - - - %s", s.priority(ev), ts, s.hostname, app, b)
	if s.Network == "tcp" {
		// RFC 6587 octet counting: "MSG-LEN SP SYSLOG-MSG".
		msg = fmt.Sprintf("%d %s", len(msg), msg)
	}
	return []byte(msg), nil
}

// Send frames and writes one message, dialing if necessary.
//
//lint:ignore locksafety s.mu exists to serialize exactly this connection I/O; Send runs only on the sink's delivery goroutine, never under engine or dispatcher locks
func (s *SyslogSink) Send(ev Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	payload, err := s.format(ev)
	if err != nil {
		return err
	}
	if s.conn == nil {
		timeout := s.DialTimeout
		if timeout == 0 {
			timeout = 5 * time.Second
		}
		conn, err := net.DialTimeout(s.Network, s.Address, timeout)
		if err != nil {
			return fmt.Errorf("alert: syslog dial %s/%s: %w", s.Network, s.Address, err)
		}
		s.conn = conn
	}
	if _, err := s.conn.Write(payload); err != nil {
		s.conn.Close()
		s.conn = nil // reconnect on the next attempt
		return fmt.Errorf("alert: syslog write: %w", err)
	}
	return nil
}

// Close drops the connection, if any.
func (s *SyslogSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn == nil {
		return nil
	}
	err := s.conn.Close()
	s.conn = nil
	return err
}
