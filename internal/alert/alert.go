// Package alert is the outbound push channel of the streaming deployment:
// it turns detections into events and forwards them to operator-configured
// sinks (webhook, syslog, file) through per-rule routing with severity and
// score filters. The paper's deliverable is an ordered list of suspicious
// domains "presented to SOC for further investigation" (§III-E) — this
// package is the delivery half of that hand-off, so a SOC learns about a
// confirmed C&C beacon when the day closes (and about a provisional one
// hours earlier, from the live preview) instead of whenever it next polls.
//
// The design constraint that shapes everything here: alerting is strictly
// best-effort and the detection path is not. A slow, dead or misconfigured
// sink must never block ingest, day-close, other sinks, or the caller of
// Publish — see Dispatcher. reprolint's neverblock analyzer enforces the
// structural half of that contract via the marker below: every channel
// send in this package must be a select with a default.
//
//lint:neverblock
package alert

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/report"
)

// EventKind distinguishes the three event sources.
type EventKind string

const (
	// KindConfirmed is a detection from a committed day-close report.
	KindConfirmed EventKind = "confirmed"
	// KindProvisional is a detection from a mid-day preview: same pipeline,
	// partial day, nothing committed — it may disappear by rollover.
	KindProvisional EventKind = "provisional"
	// KindHealth is an engine operational event (preview failure, restart).
	KindHealth EventKind = "health"
)

func (k EventKind) valid() bool {
	switch k {
	case KindConfirmed, KindProvisional, KindHealth:
		return true
	}
	return false
}

// Severity orders events for rule filtering.
type Severity int

const (
	SevInfo Severity = iota
	SevWarning
	SevCritical
)

func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	case SevCritical:
		return "critical"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// ParseSeverity reads a severity name (case-insensitive).
func ParseSeverity(s string) (Severity, error) {
	switch strings.ToLower(s) {
	case "info", "":
		return SevInfo, nil
	case "warning", "warn":
		return SevWarning, nil
	case "critical", "crit":
		return SevCritical, nil
	}
	return 0, fmt.Errorf("alert: unknown severity %q", s)
}

// MarshalJSON writes the severity by name, the form config files use.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts either the name ("critical") or the numeric level.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err == nil {
		v, perr := ParseSeverity(name)
		if perr != nil {
			return perr
		}
		*s = v
		return nil
	}
	var n int
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("alert: severity must be a name or number: %s", b)
	}
	if n < int(SevInfo) || n > int(SevCritical) {
		return fmt.Errorf("alert: severity %d out of range", n)
	}
	*s = Severity(n)
	return nil
}

// Event is one outbound alert. Detection events carry the per-domain
// evidence of the daily report entry they came from; health events carry
// only a message.
type Event struct {
	Kind     EventKind `json:"kind"`
	Time     time.Time `json:"time"`
	Severity Severity  `json:"severity"`
	// Date is the operation day the detection belongs to (YYYY-MM-DD).
	Date   string   `json:"date,omitempty"`
	Domain string   `json:"domain,omitempty"`
	Hosts  []string `json:"hosts,omitempty"`
	// Reason is "c&c" or "similarity" for detection events.
	Reason string  `json:"reason,omitempty"`
	Score  float64 `json:"score,omitempty"`
	// PeriodSeconds is the beacon period for C&C detections.
	PeriodSeconds float64 `json:"periodSeconds,omitempty"`
	Message       string  `json:"message,omitempty"`
}

// suppressKey identifies the event for the dedup window: the same
// (kind, domain, hosts, message) within the window is one alert.
func (e Event) suppressKey() string {
	return string(e.Kind) + "|" + e.Domain + "|" + strings.Join(e.Hosts, ",") + "|" + e.Message
}

// EventsFromDaily converts a daily report's suspicious-domain list into
// events of the given kind, in report order (most suspicious first). C&C
// detections are critical — a beacon is direct evidence of an active
// channel; similarity expansions are warnings.
func EventsFromDaily(d report.Daily, kind EventKind, at time.Time) []Event {
	evs := make([]Event, 0, len(d.Domains))
	for _, dom := range d.Domains {
		sev := SevWarning
		if dom.Reason == "c&c" {
			sev = SevCritical
		}
		evs = append(evs, Event{
			Kind:          kind,
			Time:          at,
			Severity:      sev,
			Date:          d.Date,
			Domain:        dom.Domain,
			Hosts:         dom.Hosts,
			Reason:        dom.Reason,
			Score:         dom.Score,
			PeriodSeconds: dom.BeaconPeriodSeconds,
			Message:       detectionMessage(kind, dom),
		})
	}
	return evs
}

func detectionMessage(kind EventKind, dom report.Domain) string {
	var b strings.Builder
	if kind == KindProvisional {
		b.WriteString("provisional ")
	}
	b.WriteString(dom.Reason)
	fmt.Fprintf(&b, " detection %s (score %.2f", dom.Domain, dom.Score)
	if dom.BeaconPeriodSeconds > 0 {
		fmt.Fprintf(&b, ", period %.0fs", dom.BeaconPeriodSeconds)
	}
	fmt.Fprintf(&b, ", %d host(s))", len(dom.Hosts))
	return b.String()
}

// HealthEvent builds an engine-operational event.
func HealthEvent(sev Severity, at time.Time, msg string) Event {
	return Event{Kind: KindHealth, Time: at, Severity: sev, Message: msg}
}
