package alert

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Dispatcher fans events out to sinks through the rule table. Its contract
// is the backpressure argument of the subsystem: Publish never blocks and
// never returns an error. Each sink owns a bounded queue and a single
// delivery goroutine; when a queue is full the event is dropped for that
// sink and counted — a dead webhook can cost you alerts (visibly, in
// Stats), never ingest throughput or a day-close. Delivery failures retry
// with exponential backoff; a sink holding a connection reconnects by
// re-dialing inside Send (see Sink).
type Dispatcher struct {
	rules   []Rule
	runners []*sinkRunner
	byName  map[string]*sinkRunner

	window       time.Duration
	maxRetries   int
	retryBackoff time.Duration
	closeTimeout time.Duration

	// now is the clock for the suppression window (a test seam).
	now func() time.Time

	supMu sync.Mutex
	seen  map[string]time.Time

	stateMu sync.RWMutex
	closed  bool

	published  atomic.Int64
	matched    atomic.Int64
	suppressed atomic.Int64

	wg sync.WaitGroup
}

// sinkRunner is one sink's bounded queue plus its delivery goroutine.
type sinkRunner struct {
	name string
	sink Sink
	ch   chan Event
	stop chan struct{}
	done chan struct{}

	sent    atomic.Int64
	dropped atomic.Int64
	retries atomic.Int64

	errMu   sync.Mutex
	lastErr string
}

func (r *sinkRunner) setErr(err error) {
	r.errMu.Lock()
	r.lastErr = err.Error()
	r.errMu.Unlock()
}

func (r *sinkRunner) lastError() string {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	return r.lastErr
}

// NewDispatcher builds a dispatcher over named sinks. An empty rule table
// routes every event to every sink; rules referencing unknown sinks are
// configuration errors.
func NewDispatcher(cfg Config, sinks map[string]Sink) (*Dispatcher, error) {
	cfg.setDefaults()
	if len(sinks) == 0 {
		return nil, fmt.Errorf("alert: no sinks configured")
	}
	d := &Dispatcher{
		rules:        cfg.Rules,
		byName:       make(map[string]*sinkRunner, len(sinks)),
		window:       time.Duration(cfg.SuppressMinutes * float64(time.Minute)),
		maxRetries:   cfg.MaxRetries,
		retryBackoff: time.Duration(cfg.RetryBackoffMillis) * time.Millisecond,
		closeTimeout: time.Duration(cfg.CloseTimeoutMillis) * time.Millisecond,
		now:          time.Now,
		seen:         make(map[string]time.Time),
	}
	names := make([]string, 0, len(sinks))
	for name := range sinks {
		names = append(names, name)
	}
	sort.Strings(names) // stable runner/stats order
	for _, name := range names {
		r := &sinkRunner{
			name: name,
			sink: sinks[name],
			ch:   make(chan Event, cfg.QueueSize),
			stop: make(chan struct{}),
			done: make(chan struct{}),
		}
		d.byName[name] = r
		d.runners = append(d.runners, r)
	}
	for i, rule := range cfg.Rules {
		if err := rule.validate(); err != nil {
			return nil, err
		}
		for _, sn := range rule.Sinks {
			if _, ok := d.byName[sn]; !ok {
				return nil, fmt.Errorf("alert: rule %d (%q) routes to unknown sink %q", i, rule.Name, sn)
			}
		}
	}
	for _, r := range d.runners {
		d.wg.Add(1)
		go d.runSink(r)
	}
	return d, nil
}

// Publish routes one event. It never blocks: matching, suppression and
// enqueueing are a few map operations and a non-blocking channel send per
// sink. Safe for concurrent use.
func (d *Dispatcher) Publish(ev Event) {
	d.published.Add(1)

	var targets map[string]bool
	if len(d.rules) == 0 {
		targets = make(map[string]bool, len(d.runners))
		for _, r := range d.runners {
			targets[r.name] = true
		}
	} else {
		for _, rule := range d.rules {
			if !rule.Matches(ev) {
				continue
			}
			if targets == nil {
				targets = make(map[string]bool, len(rule.Sinks))
			}
			for _, sn := range rule.Sinks {
				targets[sn] = true
			}
		}
	}
	if len(targets) == 0 {
		return
	}
	d.matched.Add(1)

	if d.window > 0 {
		key := ev.suppressKey()
		now := d.now()
		d.supMu.Lock()
		if last, ok := d.seen[key]; ok && now.Sub(last) < d.window {
			d.supMu.Unlock()
			d.suppressed.Add(1)
			return
		}
		d.seen[key] = now
		if len(d.seen) > 8192 {
			for k, t := range d.seen {
				if now.Sub(t) >= d.window {
					delete(d.seen, k)
				}
			}
		}
		d.supMu.Unlock()
	}

	d.stateMu.RLock()
	defer d.stateMu.RUnlock()
	if d.closed {
		return
	}
	for name := range targets {
		r := d.byName[name]
		select {
		case r.ch <- ev:
		default:
			r.dropped.Add(1) // queue full: drop for this sink, visibly
		}
	}
}

// runSink drains one sink's queue, retrying failed deliveries with
// exponential backoff. A persistent failure past the retry budget drops
// the event and moves on, so one poisoned event cannot wedge the queue.
func (d *Dispatcher) runSink(r *sinkRunner) {
	defer d.wg.Done()
	defer close(r.done)
	for ev := range r.ch {
		d.deliver(r, ev)
	}
}

func (d *Dispatcher) deliver(r *sinkRunner, ev Event) {
	delay := d.retryBackoff
	for attempt := 0; ; attempt++ {
		err := r.sink.Send(ev)
		if err == nil {
			r.sent.Add(1)
			return
		}
		r.setErr(err)
		if attempt >= d.maxRetries {
			r.dropped.Add(1)
			return
		}
		r.retries.Add(1)
		select {
		case <-r.stop: // shutting down: don't sit out the backoff
			r.dropped.Add(1)
			return
		case <-time.After(delay):
		}
		if delay *= 2; delay > 5*time.Second {
			delay = 5 * time.Second
		}
	}
}

// Close stops accepting events, waits briefly for the queues to drain, and
// closes closable sinks. A sink blocked forever inside Send would otherwise
// hold Close hostage, so the wait is bounded by the configured close
// timeout; an abandoned runner's sink is still closed (which unblocks sinks
// stuck on their own connection). Close is idempotent.
func (d *Dispatcher) Close() error {
	d.stateMu.Lock()
	if d.closed {
		d.stateMu.Unlock()
		return nil
	}
	d.closed = true
	d.stateMu.Unlock()

	for _, r := range d.runners {
		close(r.stop)
		close(r.ch)
	}
	drained := make(chan struct{})
	go func() { d.wg.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(d.closeTimeout):
	}

	var first error
	for _, r := range d.runners {
		if c, ok := r.sink.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// SinkStats is one sink's delivery counters.
type SinkStats struct {
	Name       string `json:"name"`
	Sent       int64  `json:"sent"`
	Dropped    int64  `json:"dropped"`
	Retries    int64  `json:"retries"`
	QueueDepth int    `json:"queueDepth"`
	QueueCap   int    `json:"queueCap"`
	LastError  string `json:"lastError,omitempty"`
}

// Stats is a point-in-time snapshot of the dispatcher's counters.
type Stats struct {
	Published  int64       `json:"published"`
	Matched    int64       `json:"matched"`
	Suppressed int64       `json:"suppressed"`
	Sent       int64       `json:"sent"`
	Dropped    int64       `json:"dropped"`
	Sinks      []SinkStats `json:"sinks"`
}

// Stats snapshots the counters; Sent and Dropped aggregate over sinks
// (Dropped counts both queue overflows and deliveries abandoned after the
// retry budget).
func (d *Dispatcher) Stats() Stats {
	st := Stats{Sinks: make([]SinkStats, 0, len(d.runners))}
	st.Published = d.published.Load()
	st.Matched = d.matched.Load()
	st.Suppressed = d.suppressed.Load()
	for _, r := range d.runners {
		s := SinkStats{
			Name:       r.name,
			Sent:       r.sent.Load(),
			Dropped:    r.dropped.Load(),
			Retries:    r.retries.Load(),
			QueueDepth: len(r.ch),
			QueueCap:   cap(r.ch),
			LastError:  r.lastError(),
		}
		st.Sent += s.Sent
		st.Dropped += s.Dropped
		st.Sinks = append(st.Sinks, s)
	}
	return st
}
