package alert

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/report"
)

func TestSeverityJSONRoundTrip(t *testing.T) {
	for _, sev := range []Severity{SevInfo, SevWarning, SevCritical} {
		b, err := json.Marshal(sev)
		if err != nil {
			t.Fatal(err)
		}
		var back Severity
		if err := json.Unmarshal(b, &back); err != nil || back != sev {
			t.Fatalf("%v -> %s -> %v (%v)", sev, b, back, err)
		}
	}
	var numeric Severity
	if err := json.Unmarshal([]byte("2"), &numeric); err != nil || numeric != SevCritical {
		t.Fatalf("numeric severity: %v, %v", numeric, err)
	}
	var bad Severity
	if err := json.Unmarshal([]byte(`"shrug"`), &bad); err == nil {
		t.Fatal("unknown severity name accepted")
	}
	if err := json.Unmarshal([]byte("17"), &bad); err == nil {
		t.Fatal("out-of-range severity accepted")
	}
}

func TestEventsFromDaily(t *testing.T) {
	daily := report.Daily{
		Date:             "2014-02-20",
		RareDestinations: 40,
		AutomatedDomains: 2,
		Domains: []report.Domain{
			{Domain: "evil.example", Reason: "c&c", Score: 0.91,
				BeaconPeriodSeconds: 600, Hosts: []string{"h1", "h2"}, Modes: []string{"no-hint"}},
			{Domain: "friend.example", Reason: "similarity", Score: 0.55,
				Hosts: []string{"h1"}, Modes: []string{"no-hint"}, Iteration: 1},
		},
	}
	at := time.Date(2014, 2, 21, 0, 5, 0, 0, time.UTC)
	evs := EventsFromDaily(daily, KindConfirmed, at)
	if len(evs) != 2 {
		t.Fatalf("%d events, want 2", len(evs))
	}
	cc := evs[0]
	if cc.Kind != KindConfirmed || cc.Severity != SevCritical || cc.Domain != "evil.example" ||
		cc.PeriodSeconds != 600 || cc.Date != "2014-02-20" || !cc.Time.Equal(at) {
		t.Fatalf("c&c event %+v", cc)
	}
	if len(cc.Hosts) != 2 || cc.Message == "" {
		t.Fatalf("c&c event evidence %+v", cc)
	}
	sim := evs[1]
	if sim.Severity != SevWarning || sim.Reason != "similarity" || sim.PeriodSeconds != 0 {
		t.Fatalf("similarity event %+v", sim)
	}

	prov := EventsFromDaily(daily, KindProvisional, at)
	if prov[0].Kind != KindProvisional || prov[0].Message == evs[0].Message {
		t.Fatalf("provisional message must be marked: %q", prov[0].Message)
	}
}

func TestRuleMatches(t *testing.T) {
	ev := testEvent("c2.evil.example") // confirmed, critical, score 0.9
	cases := []struct {
		name string
		rule Rule
		want bool
	}{
		{"empty matches all", Rule{Sinks: []string{"s"}}, true},
		{"kind hit", Rule{Kinds: []EventKind{KindConfirmed}, Sinks: []string{"s"}}, true},
		{"kind miss", Rule{Kinds: []EventKind{KindHealth}, Sinks: []string{"s"}}, false},
		{"severity floor", Rule{MinSeverity: SevCritical, Sinks: []string{"s"}}, true},
		{"score floor hit", Rule{MinScore: 0.5, Sinks: []string{"s"}}, true},
		{"score floor miss", Rule{MinScore: 0.95, Sinks: []string{"s"}}, false},
		{"glob hit", Rule{DomainPattern: "*.evil.example", Sinks: []string{"s"}}, true},
		{"glob miss", Rule{DomainPattern: "*.good.example", Sinks: []string{"s"}}, false},
	}
	for _, tc := range cases {
		if got := tc.rule.Matches(ev); got != tc.want {
			t.Errorf("%s: Matches = %v, want %v", tc.name, got, tc.want)
		}
	}
	// Health events carry no score: a MinScore rule still forwards them.
	health := HealthEvent(SevWarning, time.Now(), "preview failed")
	if !(Rule{MinScore: 0.5, Sinks: []string{"s"}}).Matches(health) {
		t.Error("MinScore rule filtered a health event")
	}
	if (Rule{MinSeverity: SevCritical, Sinks: []string{"s"}}).Matches(health) {
		t.Error("severity floor ignored for health events")
	}
}
