package repro_test

// Black-box tests of the public API: everything a downstream user needs
// must be reachable through package repro alone.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro"
)

func TestPublicQuickstartFlow(t *testing.T) {
	// Generate a small synthetic enterprise dataset.
	g := repro.NewEnterpriseGenerator(repro.EnterpriseGeneratorConfig{
		Seed: 1, TrainingDays: 3, OperationDays: 9,
		Hosts: 40, PopularDomains: 50, NewRarePerDay: 10,
		BenignAutoPerDay: 3, Campaigns: 6,
	})

	// Simulated externals.
	reg := repro.NewWHOISRegistry()
	repro.PopulateWHOIS(reg, g.Truth, g.RareRegistrations(), g.DayTime(g.NumDays()))
	oracle := repro.NewIntelOracle()
	repro.PopulateOracle(oracle, g.Truth, repro.OracleConfig{Seed: 1})

	// Pipeline: train, calibrate, operate.
	p := repro.NewEnterprisePipeline(repro.EnterprisePipelineConfig{CalibrationDays: 4},
		reg, oracle.Reported, oracle.IOCs)
	for day := 0; day < g.Config().TrainingDays; day++ {
		p.Train(g.DayTime(day), g.Day(day), g.DHCPMap(day))
	}
	detections := 0
	for day := g.Config().TrainingDays; day < g.NumDays(); day++ {
		rep, err := p.Process(g.DayTime(day), g.Day(day), g.DHCPMap(day))
		if err != nil {
			t.Fatal(err)
		}
		detections += len(rep.NoHintDomains()) + len(rep.SOCHintDomains())
	}
	if !p.Trained() {
		t.Fatal("pipeline did not calibrate")
	}
	if detections == 0 {
		t.Error("no detections through the public API flow")
	}
}

func TestPublicPeriodicityAPI(t *testing.T) {
	base := time.Date(2014, 2, 1, 9, 0, 0, 0, time.UTC)
	var times []time.Time
	for i := 0; i < 12; i++ {
		times = append(times, base.Add(time.Duration(i)*10*time.Minute))
	}
	v := repro.AnalyzeTimes(times, repro.DefaultHistogramConfig())
	if !v.Automated || v.Period != 600 {
		t.Errorf("verdict = %+v", v)
	}
}

func TestPublicFoldAndReduce(t *testing.T) {
	if repro.FoldDomain("news.nbc.com", 2) != "nbc.com" {
		t.Error("FoldDomain")
	}
	visits, stats := repro.ReduceDNS([]repro.DNSRecord{})
	if len(visits) != 0 || stats.Records != 0 {
		t.Error("empty reduce")
	}
}

func TestPublicLANLChallenge(t *testing.T) {
	if testing.Short() {
		t.Skip("full challenge run")
	}
	run := repro.RunLANLChallenge(repro.ScaleSmall, 33)
	if len(run.ChallengeReports) != 20 {
		t.Fatalf("challenge reports = %d, want 20", len(run.ChallengeReports))
	}
}

func TestPublicClusteringAPI(t *testing.T) {
	infos := []repro.ClusterDomainInfo{
		{Domain: "a.ru", Paths: []string{"/logo.gif?"}},
		{Domain: "b.in", Paths: []string{"/logo.gif?"}},
	}
	clusters := repro.FindClusters(infos)
	if len(clusters) != 1 || clusters[0].Kind != repro.ClusterURLPattern {
		t.Errorf("clusters = %+v", clusters)
	}
	if !repro.LooksDGA("f0371288e0a20a541328") || repro.LooksDGA("wikipedia") {
		t.Error("LooksDGA facade broken")
	}
}

func TestPublicHistoryPersistence(t *testing.T) {
	h := repro.NewHistory()
	h.UpdateDomains(time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC), []string{"x.com"})
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := repro.LoadHistory(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.SeenDomain("x.com") {
		t.Error("persistence round trip lost domain")
	}
}

func TestPublicFlowAPI(t *testing.T) {
	g := repro.NewEnterpriseGenerator(repro.EnterpriseGeneratorConfig{
		Seed: 2, TrainingDays: 1, OperationDays: 1,
		Hosts: 10, PopularDomains: 20, NewRarePerDay: 3, Campaigns: 1,
	})
	visits, stats := repro.ReduceFlows(g.FlowDay(0), g.DHCPMap(0))
	if len(visits) == 0 || stats.Kept == 0 {
		t.Fatalf("flow reduction empty: %+v", stats)
	}
}

func TestPublicBatchAndReportAPI(t *testing.T) {
	// datagen-format dataset written through the facade types, consumed by
	// the batch runner, summarized as a SOC report.
	g := repro.NewEnterpriseGenerator(repro.EnterpriseGeneratorConfig{
		Seed: 3, TrainingDays: 2, OperationDays: 5,
		Hosts: 25, PopularDomains: 30, NewRarePerDay: 6,
		BenignAutoPerDay: 2, Campaigns: 3,
	})
	dir := t.TempDir()
	for day := 0; day < g.NumDays(); day++ {
		date := g.DayTime(day).Format("2006-01-02")
		f, err := os.Create(filepath.Join(dir, "proxy-"+date+".tsv"))
		if err != nil {
			t.Fatal(err)
		}
		w := repro.NewProxyWriter(f)
		for _, r := range g.Day(day) {
			if err := w.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		f.Close()
		leases := map[string]string{}
		for ip, host := range g.DHCPMap(day) {
			leases[ip.String()] = host
		}
		data, _ := json.Marshal(leases)
		if err := os.WriteFile(filepath.Join(dir, "leases-"+date+".json"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	reg := repro.NewWHOISRegistry()
	repro.PopulateWHOIS(reg, g.Truth, g.RareRegistrations(), g.DayTime(g.NumDays()))
	oracle := repro.NewIntelOracle()
	repro.PopulateOracle(oracle, g.Truth, repro.OracleConfig{Seed: 3})
	p := repro.NewEnterprisePipeline(repro.EnterprisePipelineConfig{CalibrationDays: 2},
		reg, oracle.Reported, oracle.IOCs)

	reports, err := repro.RunEnterpriseBatches(dir, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 5 {
		t.Fatalf("reports = %d", len(reports))
	}
	for _, rep := range reports {
		daily := repro.BuildDailyReport(rep)
		var buf bytes.Buffer
		if err := daily.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if !json.Valid(buf.Bytes()) {
			t.Fatal("report is not valid JSON")
		}
	}
}

func ExampleBeliefPropagation() {
	day := time.Date(2014, 2, 10, 0, 0, 0, 0, time.UTC)
	hist := repro.NewHistory()

	// One compromised host beacons to a C&C domain every 10 minutes and
	// touched a delivery domain moments before the implant came up.
	var visits []repro.Visit
	for i := 0; i < 20; i++ {
		visits = append(visits, repro.Visit{
			Time: day.Add(10*time.Hour + time.Duration(i)*10*time.Minute),
			Host: "hostA", Domain: "evil-cc.ru",
		})
		visits = append(visits, repro.Visit{
			Time: day.Add(10*time.Hour + 2*time.Second + time.Duration(i)*10*time.Minute),
			Host: "hostB", Domain: "evil-cc.ru",
		})
	}
	visits = append(visits, repro.Visit{
		Time: day.Add(10*time.Hour - 90*time.Second),
		Host: "hostA", Domain: "payload-drop.ru",
	})

	snap := repro.NewSnapshot(day, visits, hist, 10)
	res := repro.BeliefPropagation(snap, []string{"hostA"}, nil,
		repro.NewLANLCCDetector(), repro.AdditiveScorer{},
		repro.BPConfig{ScoreThreshold: 0.25, MaxIterations: 5})

	for _, d := range res.Detections {
		fmt.Printf("%s via %s\n", d.Domain, d.Reason)
	}
	fmt.Printf("compromised: %v\n", res.Hosts)
	// Output:
	// evil-cc.ru via c&c
	// payload-drop.ru via similarity
	// compromised: [hostA hostB]
}
