// Command reprolint runs the repo's invariant lint suite (internal/lint)
// over Go packages and exits nonzero on any finding. It is the static half
// of the determinism/never-block contracts the equivalence tests check at
// runtime, and a required CI step.
//
// Usage:
//
//	go run ./cmd/reprolint ./...          # lint the whole module
//	go run ./cmd/reprolint ./internal/... # or a subset
//	go run ./cmd/reprolint -list          # describe the analyzers
//
// Suppress a false positive in place with
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// on the flagged line, the line above, or in the function's doc comment for
// a whole-function exemption. The reason is mandatory.
//
// (A `go vet -vettool` mode would need x/tools' unitchecker; the module is
// deliberately dependency-free, so standalone invocation is the interface.)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reprolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "reprolint:", err)
		return 2
	}
	findings := 0
	for _, pkg := range pkgs {
		diags, err := lint.Run(pkg, lint.Analyzers())
		if err != nil {
			fmt.Fprintln(stderr, "reprolint:", err)
			return 2
		}
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "reprolint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
