package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListDescribesEveryAnalyzer(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errOut.String())
	}
	for _, name := range []string{"maporder", "puredet", "locksafety", "neverblock"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"repro/internal/report"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d on a clean package\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("unexpected findings on clean package: %s", out.String())
	}
}

// TestSeededViolationsFailTheGate points the driver at the maporder fixture
// package — a deliberately violating determinism-marked package — and
// requires a nonzero exit with positioned findings on stdout. This is the
// end-to-end proof the CI gate actually trips.
func TestSeededViolationsFailTheGate(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"repro/internal/lint/testdata/src/maporder"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d on a violating package, want 1\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "maporder: append to") {
		t.Errorf("findings missing the seeded maporder violation:\n%s", out.String())
	}
}

func TestBadPatternExitsTwo(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"repro/no/such/package"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d on a bad pattern, want 2 (stderr: %s)", code, errOut.String())
	}
}
