package main

import (
	"strings"
	"testing"
)

func TestRunProducesAllArtifacts(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 21, false, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"calibration:", "C&C model:",
		"Figure 5:", "Figure 6(a):", "Figure 6(b):", "Figure 6(c):",
		"Figure 7", "Figure 8",
		"rare=", // the -days operational log
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
