package main

import (
	"strings"
	"testing"
)

// TestWorkersFlagReachesPipeline: the -workers knob must land in the
// pipeline configuration the evaluation runs with.
func TestWorkersFlagReachesPipeline(t *testing.T) {
	run, err := newRun(21, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := run.Pipe.Config().Workers; got != 2 {
		t.Fatalf("pipeline Workers = %d, want 2", got)
	}
}

func TestRunProducesAllArtifacts(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 21, false, true, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"calibration:", "C&C model:",
		"Figure 5:", "Figure 6(a):", "Figure 6(b):", "Figure 6(c):",
		"Figure 7", "Figure 8",
		"rare=", // the -days operational log
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
