// Command entdetect reproduces the paper's enterprise evaluation (§VI): it
// synthesizes the AC-style web-proxy dataset, trains the pipeline on the
// profiling month, calibrates the two regressions against the simulated
// VirusTotal/IOC oracle, runs daily detection in both modes, and prints
// Figures 5-8 plus the per-day operational summary.
//
// Usage:
//
//	entdetect [-seed N] [-full] [-days] [-workers N]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/eval"
	"repro/internal/report"
)

func main() {
	seed := flag.Int64("seed", 21, "dataset seed")
	full := flag.Bool("full", false, "use the full-scale dataset")
	days := flag.Bool("days", false, "print the per-day operational log")
	jsonOut := flag.Bool("json", false, "emit per-day SOC reports as JSON instead of figures")
	workers := flag.Int("workers", 0, "day-close pipeline workers (0 = GOMAXPROCS, 1 = sequential; results identical)")
	flag.Parse()
	if *jsonOut {
		if err := runJSON(os.Stdout, *seed, *full, *workers); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdout, *seed, *full, *days, *workers); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// newRun executes the full evaluation per the command-line knobs.
func newRun(seed int64, full bool, workers int) (*eval.EnterpriseRun, error) {
	scale := eval.ScaleSmall
	if full {
		scale = eval.ScaleFull
	}
	return eval.RunEnterpriseWorkers(scale, seed, workers)
}

// runJSON emits the ordered suspicious-domain list of each operation day
// as the SOC-facing JSON report.
func runJSON(w io.Writer, seed int64, full bool, workers int) error {
	run, err := newRun(seed, full, workers)
	if err != nil {
		return err
	}
	for _, rep := range run.OperationReports() {
		daily := report.Build(rep)
		if len(daily.Domains) == 0 {
			continue
		}
		if err := daily.WriteJSON(w); err != nil {
			return err
		}
	}
	return nil
}

func run(w io.Writer, seed int64, full, days bool, workers int) error {
	run, err := newRun(seed, full, workers)
	if err != nil {
		return err
	}

	det := run.Pipe.Detector()
	fmt.Fprintf(w, "calibration: %d C&C examples, %d similarity examples; Tc=%.3f Ts=%.3f\n",
		len(run.Pipe.CCExamples()), len(run.Pipe.SimilarityExamples()),
		det.Threshold, run.Pipe.SimThreshold())
	if det.Model != nil {
		fmt.Fprintf(w, "C&C model: R²=%.3f on %d observations\n\n", det.Model.R2, det.Model.N)
	}

	if days {
		for _, rep := range run.OperationReports() {
			fmt.Fprintf(w, "%s  rare=%-5d automated=%-3d C&C=%d",
				rep.Day.Format("2006-01-02"), rep.RareCount, len(rep.Automated), len(rep.CC))
			if rep.NoHint != nil {
				fmt.Fprintf(w, "  no-hint+%d", len(rep.NoHint.Detections))
			}
			if rep.SOCHints != nil {
				fmt.Fprintf(w, "  soc+%d", len(rep.SOCHints.Detections))
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}

	_, f5 := eval.Figure5(run)
	fmt.Fprintln(w, f5)
	_, f6a := eval.Figure6a(run)
	fmt.Fprintln(w, f6a)
	_, f6b := eval.Figure6b(run)
	fmt.Fprintln(w, f6b)
	_, f6c := eval.Figure6c(run)
	fmt.Fprintln(w, f6c)
	c7, t7 := eval.Figure7(run)
	fmt.Fprintln(w, t7)
	fmt.Fprintln(w, c7.DOT)
	c8, t8 := eval.Figure8(run)
	fmt.Fprintln(w, t8)
	fmt.Fprintln(w, c8.DOT)
	return nil
}
