package main

import (
	"strings"
	"testing"
)

func TestRunProducesAllArtifacts(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 21, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Table I:", "Table II:", "Table III:",
		"Figure 2:", "Figure 3:", "Figure 4:",
		"TDR", "graph \"figure4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
