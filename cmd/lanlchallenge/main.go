// Command lanlchallenge reproduces the paper's LANL evaluation (§V): it
// synthesizes the anonymized DNS dataset with the 20 simulated APT
// campaigns of Table I, runs the full pipeline, and prints Tables I-III
// and Figures 2-4.
//
// Usage:
//
//	lanlchallenge [-seed N] [-full]
//
// -full uses the paper-scale dataset sizes (slower); the default small
// scale finishes in about a second.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/eval"
)

func main() {
	seed := flag.Int64("seed", 21, "dataset seed")
	full := flag.Bool("full", false, "use the full-scale dataset")
	flag.Parse()
	if err := run(os.Stdout, *seed, *full); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(w io.Writer, seed int64, full bool) error {
	scale := eval.ScaleSmall
	if full {
		scale = eval.ScaleFull
	}
	lanl := eval.RunLANL(scale, seed)

	fmt.Fprintln(w, eval.Table1(lanl))
	_, t2 := eval.Table2(lanl)
	fmt.Fprintln(w, t2)
	res, t3 := eval.Table3(lanl)
	fmt.Fprintln(w, t3)
	tot := res.Totals()
	fmt.Fprintf(w, "paper reference: TDR 98.33%%, FDR 1.67%%, FNR 6.25%% — this run: TDR %s, FDR %s, FNR %s\n\n",
		eval.Pct(tot.TDR()), eval.Pct(tot.FDR()), eval.Pct(tot.FNR()))

	_, f2 := eval.Figure2(lanl)
	fmt.Fprintln(w, f2)
	_, f3 := eval.Figure3(lanl)
	fmt.Fprintln(w, f3)
	f4res, f4 := eval.Figure4(lanl)
	fmt.Fprintln(w, f4)
	fmt.Fprintln(w, f4res.DOT)
	return nil
}
