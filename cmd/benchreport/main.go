// Command benchreport regenerates every table and figure of the paper in
// one run and prints them as plain-text artifacts — the same content the
// benchmark harness measures and EXPERIMENTS.md records.
//
// Usage:
//
//	benchreport [-seed N] [-full] [-o FILE]
//	benchreport -perf FILE.json
//
// With -perf the tables are skipped and a machine-readable performance
// snapshot is written instead: day-close wall-clock at Workers=1 vs
// GOMAXPROCS, the streaming ingest-to-report cycle serial vs pipelined,
// and checkpoint encode/restore in both formats (legacy v1 replay vs v2
// builder frames). CI uploads it as the BENCH_PR5.json artifact so the
// perf trajectory is tracked across pull requests.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/eval"
)

func main() {
	seed := flag.Int64("seed", 21, "dataset seed")
	full := flag.Bool("full", false, "use the full-scale datasets")
	outPath := flag.String("o", "", "write the report to a file instead of stdout")
	perfPath := flag.String("perf", "", "measure day-close/ingest performance and write JSON to this file (skips the tables)")
	flag.Parse()

	if *perfPath != "" {
		if err := runPerf(*perfPath, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := run(w, *seed, *full); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(w io.Writer, seed int64, full bool) error {
	scale := eval.ScaleSmall
	if full {
		scale = eval.ScaleFull
	}

	fmt.Fprintf(w, "Reproduction report — Oprea et al., DSN 2015 (seed=%d, full=%v)\n", seed, full)
	fmt.Fprintln(w, "================================================================")
	fmt.Fprintln(w)

	lanl := eval.RunLANL(scale, seed)
	fmt.Fprintln(w, eval.Table1(lanl))
	_, t2 := eval.Table2(lanl)
	fmt.Fprintln(w, t2)
	res3, t3 := eval.Table3(lanl)
	fmt.Fprintln(w, t3)
	tot := res3.Totals()
	fmt.Fprintf(w, "paper: TDR 98.33%% FDR 1.67%% FNR 6.25%% | this run: TDR %s FDR %s FNR %s\n\n",
		eval.Pct(tot.TDR()), eval.Pct(tot.FDR()), eval.Pct(tot.FNR()))

	_, f2 := eval.Figure2(lanl)
	fmt.Fprintln(w, f2)
	res3f, f3 := eval.Figure3(lanl)
	fmt.Fprintln(w, f3)
	fmt.Fprintf(w, "paper: 56%% of (mal,mal) pairs within 160s vs 3.8%% (mal,legit) | this run: %s vs %s\n\n",
		eval.Pct(res3f.MalMal.At(160)), eval.Pct(res3f.MalLegit.At(160)))
	f4res, f4 := eval.Figure4(lanl)
	fmt.Fprintln(w, f4)
	fmt.Fprintln(w, f4res.DOT)

	ent, err := eval.RunEnterprise(scale, seed)
	if err != nil {
		return err
	}
	det := ent.Pipe.Detector()
	fmt.Fprintf(w, "enterprise calibration: %d C&C / %d similarity examples, Tc=%.3f Ts=%.3f, C&C model R²=%.3f\n\n",
		len(ent.Pipe.CCExamples()), len(ent.Pipe.SimilarityExamples()),
		det.Threshold, ent.Pipe.SimThreshold(), det.Model.R2)

	_, f5 := eval.Figure5(ent)
	fmt.Fprintln(w, f5)
	_, f6a := eval.Figure6a(ent)
	fmt.Fprintln(w, f6a)
	_, f6b := eval.Figure6b(ent)
	fmt.Fprintln(w, f6b)
	_, f6c := eval.Figure6c(ent)
	fmt.Fprintln(w, f6c)
	c7, t7 := eval.Figure7(ent)
	fmt.Fprintln(w, t7)
	fmt.Fprintln(w, c7.DOT)
	c8, t8 := eval.Figure8(ent)
	fmt.Fprintln(w, t8)
	fmt.Fprintln(w, c8.DOT)

	_, cl := eval.Clusters(ent)
	fmt.Fprintln(w, cl)

	_, a1 := eval.AblationDetectors(seed, 40)
	fmt.Fprintln(w, a1)
	_, a2, err := eval.AblationFeatures(ent)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, a2)
	_, a3 := eval.AblationEvasion(seed, 200)
	fmt.Fprintln(w, a3)
	_, a4 := eval.AblationDistanceMetric(seed, 60)
	fmt.Fprintln(w, a4)
	_, a5 := eval.AblationRareRestriction(lanl)
	fmt.Fprintln(w, a5)
	_, gn := eval.Generality(scale, seed)
	fmt.Fprintln(w, gn)
	return nil
}
