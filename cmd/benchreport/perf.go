package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/ccdetect"
	"repro/internal/features"
	"repro/internal/gen"
	"repro/internal/logs"
	"repro/internal/normalize"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/stream"
	"repro/internal/whois"
)

// perfSnapshot is the BENCH_PR4.json schema: one comparable point on the
// perf trajectory per CI run. Rates are records (or visits) per second;
// durations are milliseconds, medians of perfRounds runs.
type perfSnapshot struct {
	GOMAXPROCS int   `json:"gomaxprocs"`
	Seed       int64 `json:"seed"`

	// Day-close analytics (snapshot build + periodicity profiling +
	// feature extraction) over one generated operation day.
	DayCloseVisits       int     `json:"dayCloseVisits"`
	DayCloseSequentialMs float64 `json:"dayCloseSequentialMs"` // Workers=1
	DayCloseParallelMs   float64 `json:"dayCloseParallelMs"`   // Workers=GOMAXPROCS
	DayCloseSpeedup      float64 `json:"dayCloseSpeedup"`

	// The same analytics from per-shard incremental partials (the
	// streaming rollover path): snapshot stage = merge + classification
	// instead of a full re-reduce of the day's visits.
	DayCloseIncrementalSequentialMs float64 `json:"dayCloseIncrementalSequentialMs"`
	DayCloseIncrementalParallelMs   float64 `json:"dayCloseIncrementalParallelMs"`
	// DayCloseIncrementalSpeedup compares incremental vs batch at equal
	// worker counts (sequential/sequential).
	DayCloseIncrementalSpeedup float64 `json:"dayCloseIncrementalSpeedup"`

	// Full streaming day cycle (batched ingest + pipeline rollover),
	// day-closes serialized by per-day Flush vs overlapped with next-day
	// ingest via BeginDay swap-and-continue.
	IngestDays              int     `json:"ingestDays"`
	IngestRecordsPerDay     int     `json:"ingestRecordsPerDay"`
	IngestToReportSerialRps float64 `json:"ingestToReportSerialRecS"`
	IngestToReportPipelined float64 `json:"ingestToReportPipelinedRecS"`

	// The rollover ingest-stall (exclusive-lock hold during the buffer
	// swap) vs the background pipeline duration it used to contain.
	RolloverPauseMicros int64 `json:"rolloverPauseMicros"`
	DayCloseMillis      int64 `json:"dayCloseMillis"`

	// Checkpoint format comparison over one high-volume open day: legacy v1
	// (raw-record replay, size proportional to traffic volume) vs v2
	// (domain-keyed builder frames, size proportional to distinct
	// (host, domain) state; restore re-partitions instead of replaying
	// per-record work).
	CheckpointRecords     int     `json:"checkpointRecords"`
	CheckpointV1Bytes     int64   `json:"checkpointV1Bytes"`
	CheckpointV2Bytes     int64   `json:"checkpointV2Bytes"`
	CheckpointV1EncodeMs  float64 `json:"checkpointV1EncodeMs"`
	CheckpointV2EncodeMs  float64 `json:"checkpointV2EncodeMs"`
	CheckpointV1RestoreMs float64 `json:"checkpointV1RestoreMs"`
	CheckpointV2RestoreMs float64 `json:"checkpointV2RestoreMs"`
}

const perfRounds = 3

func medianMs(runs []time.Duration) float64 {
	sort.Slice(runs, func(i, j int) bool { return runs[i] < runs[j] })
	return float64(runs[len(runs)/2].Microseconds()) / 1000
}

// runPerf measures the PR 3 concurrency surfaces and writes the snapshot.
func runPerf(path string, seed int64) error {
	snap := perfSnapshot{GOMAXPROCS: runtime.GOMAXPROCS(0), Seed: seed}

	if err := perfDayClose(&snap, seed); err != nil {
		return err
	}
	if err := perfIngestToReport(&snap); err != nil {
		return err
	}
	if err := perfCheckpoint(&snap); err != nil {
		return err
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("perf snapshot written to %s\n%s", path, data)
	return nil
}

// perfDayClose times the pure analytics of one rollover at Workers=1 vs
// Workers=GOMAXPROCS over identical inputs (no history commit, so every
// round replays the same work).
func perfDayClose(snap *perfSnapshot, seed int64) error {
	g := gen.NewEnterprise(gen.EnterpriseConfig{
		Seed: seed, TrainingDays: 5, OperationDays: 1,
		Hosts: 300, PopularDomains: 150, NewRarePerDay: 80,
		BenignAutoPerDay: 10, Campaigns: 4,
	})
	reg := whois.NewRegistry()
	gen.PopulateWHOIS(reg, g.Truth, g.RareRegistrations(), g.DayTime(g.NumDays()))
	hist := profile.NewHistory()
	for d := 0; d < g.Config().TrainingDays; d++ {
		visits, _ := normalize.ReduceProxy(g.Day(d), g.DHCPMap(d))
		profile.NewSnapshot(g.DayTime(d), visits, hist, 10).Commit(hist)
	}
	opDay := g.Config().TrainingDays
	day := g.DayTime(opDay)
	visits, _ := normalize.ReduceProxy(g.Day(opDay), g.DHCPMap(opDay))
	det := ccdetect.NewDetector(&features.Extractor{Hist: hist, Whois: reg})
	snap.DayCloseVisits = len(visits)

	measure := func(workers int) float64 {
		var runs []time.Duration
		for r := 0; r < perfRounds; r++ {
			start := time.Now()
			s := profile.NewSnapshotParallel(day, visits, hist, 10, workers)
			ads := det.FindAutomatedParallel(s, workers)
			det.FillFeaturesParallel(ads, day, workers)
			runs = append(runs, time.Since(start))
		}
		return medianMs(runs)
	}
	snap.DayCloseSequentialMs = measure(1)
	snap.DayCloseParallelMs = measure(0)
	if snap.DayCloseParallelMs > 0 {
		snap.DayCloseSpeedup = snap.DayCloseSequentialMs / snap.DayCloseParallelMs
	}

	// The incremental rollover path: per-shard partials maintained during
	// ingest (untimed — that cost rides the ingest hot path), merged +
	// classified at close. The partials are rebuilt for every round:
	// reusing one set would hand later rounds pre-sorted rare timestamps
	// and understate the merge.
	const shards = 4
	buildParts := func() []*profile.IncrementalBuilder {
		parts := make([]*profile.IncrementalBuilder, shards)
		for i := range parts {
			parts[i] = profile.NewIncrementalBuilder()
		}
		for i := range visits {
			v := &visits[i]
			parts[profile.PairPartition(v.Host, v.Domain, shards)].Add(uint64(i), v)
		}
		return parts
	}
	measureInc := func(workers int) float64 {
		var runs []time.Duration
		for r := 0; r < perfRounds; r++ {
			parts := buildParts()
			start := time.Now()
			s := profile.MergeSnapshotParallel(day, parts, hist, 10, workers)
			ads := det.FindAutomatedParallel(s, workers)
			det.FillFeaturesParallel(ads, day, workers)
			runs = append(runs, time.Since(start))
		}
		return medianMs(runs)
	}
	snap.DayCloseIncrementalSequentialMs = measureInc(1)
	snap.DayCloseIncrementalParallelMs = measureInc(0)
	if snap.DayCloseIncrementalSequentialMs > 0 {
		snap.DayCloseIncrementalSpeedup = snap.DayCloseSequentialMs / snap.DayCloseIncrementalSequentialMs
	}
	return nil
}

// perfIngestToReport drives the streaming engine through several full days
// twice: with day-closes serialized by per-day Flush, and with the
// swap-and-continue overlap (BeginDay rollovers, one final Flush). The
// total work is identical; the difference is the overlap the non-blocking
// rollover buys.
func perfIngestToReport(snap *perfSnapshot) error {
	const days, perDay, batchSize = 4, 20000, 512
	snap.IngestDays = days
	snap.IngestRecordsPerDay = perDay
	base := time.Date(2014, 2, 3, 0, 0, 0, 0, time.UTC)
	recs := make([]logs.ProxyRecord, perDay)
	for i := range recs {
		recs[i] = logs.ProxyRecord{
			Host:      fmt.Sprintf("host-%03d", i%64),
			Domain:    fmt.Sprintf("dom-%03d.example.net", i%61),
			URL:       "http://example.net/index.html",
			Method:    "GET",
			Status:    200,
			UserAgent: "bench-agent/1.0",
		}
	}

	newEngine := func() *stream.Engine {
		pipe := pipeline.NewEnterprise(pipeline.EnterpriseConfig{}, whois.NewRegistry(), nil, nil)
		return stream.New(stream.Config{Shards: 4, QueueDepth: 8192, TrainingDays: 1 << 30}, pipe)
	}
	runCycle := func(pipelined bool) (float64, error) {
		var best float64
		for r := 0; r < perfRounds; r++ {
			e := newEngine()
			start := time.Now()
			for d := 0; d < days; d++ {
				dayT := base.AddDate(0, 0, d)
				if err := e.BeginDay(dayT, nil); err != nil {
					return 0, err
				}
				for i := range recs {
					recs[i].Time = dayT.Add(time.Duration(i) * 4 * time.Millisecond)
				}
				for i := 0; i < perDay; i += batchSize {
					end := i + batchSize
					if end > perDay {
						end = perDay
					}
					if err := e.IngestBatch(recs[i:end]); err != nil {
						return 0, err
					}
				}
				if !pipelined {
					if err := e.Flush(); err != nil {
						return 0, err
					}
				}
			}
			if err := e.Flush(); err != nil {
				return 0, err
			}
			rps := float64(days*perDay) / time.Since(start).Seconds()
			if rps > best {
				best = rps
			}
			if pipelined {
				st := e.Stats()
				snap.RolloverPauseMicros = st.LastRolloverPauseMicros
				snap.DayCloseMillis = st.LastDayCloseMillis
			}
			if err := e.Close(); err != nil {
				return 0, err
			}
		}
		return best, nil
	}

	var err error
	if snap.IngestToReportSerialRps, err = runCycle(false); err != nil {
		return err
	}
	if snap.IngestToReportPipelined, err = runCycle(true); err != nil {
		return err
	}
	return nil
}

// perfCheckpoint prices checkpoint encode and restore in both formats over
// the same high-volume open day (many records over a bounded working set of
// (host, domain) pairs — the shape where the v2 builder encoding wins).
func perfCheckpoint(snap *perfSnapshot) error {
	const perDay = 40000
	snap.CheckpointRecords = perDay
	base := time.Date(2014, 2, 3, 0, 0, 0, 0, time.UTC)
	recs := make([]logs.ProxyRecord, perDay)
	for i := range recs {
		recs[i] = logs.ProxyRecord{
			Time:      base.Add(time.Duration(i) * 2 * time.Millisecond),
			Host:      fmt.Sprintf("host-%03d", i%64),
			Domain:    fmt.Sprintf("dom-%03d.example.net", i%61),
			URL:       "http://example.net/index.html",
			Method:    "GET",
			Status:    200,
			UserAgent: "bench-agent/1.0",
		}
	}
	pipe := pipeline.NewEnterprise(pipeline.EnterpriseConfig{}, whois.NewRegistry(), nil, nil)
	e := stream.New(stream.Config{Shards: 4, QueueDepth: 8192, TrainingDays: 1 << 30}, pipe)
	defer e.Close()
	if err := e.BeginDay(base, nil); err != nil {
		return err
	}
	for i := 0; i < perDay; i += 512 {
		end := min(i+512, perDay)
		if err := e.IngestBatch(recs[i:end]); err != nil {
			return err
		}
	}

	type format struct {
		encode    func(w io.Writer) error
		bytes     *int64
		encodeMs  *float64
		restoreMs *float64
	}
	formats := []format{
		{func(w io.Writer) error { return e.CheckpointV1(w, recs) },
			&snap.CheckpointV1Bytes, &snap.CheckpointV1EncodeMs, &snap.CheckpointV1RestoreMs},
		{func(w io.Writer) error { return e.Checkpoint(w) },
			&snap.CheckpointV2Bytes, &snap.CheckpointV2EncodeMs, &snap.CheckpointV2RestoreMs},
	}
	for _, f := range formats {
		var buf bytes.Buffer
		var encRuns, resRuns []time.Duration
		for r := 0; r < perfRounds; r++ {
			buf.Reset()
			start := time.Now()
			if err := f.encode(&buf); err != nil {
				return err
			}
			encRuns = append(encRuns, time.Since(start))

			start = time.Now()
			restored, err := stream.Restore(bytes.NewReader(buf.Bytes()),
				stream.Config{Shards: 4, QueueDepth: 8192}, stream.RestoreDeps{})
			if err != nil {
				return err
			}
			_ = restored.Stats() // quiesce: include any queued replay work
			resRuns = append(resRuns, time.Since(start))
			if err := restored.Close(); err != nil {
				return err
			}
		}
		*f.bytes = int64(buf.Len())
		*f.encodeMs = medianMs(encRuns)
		*f.restoreMs = medianMs(resRuns)
	}
	return nil
}
