package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/ccdetect"
	"repro/internal/features"
	"repro/internal/gen"
	"repro/internal/inputs"
	"repro/internal/loadgen"
	"repro/internal/logs"
	"repro/internal/normalize"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/stream"
	"repro/internal/whois"
)

// perfSnapshot is the BENCH_PR*.json schema: one comparable point on the
// perf trajectory per CI run. Rates are records (or visits) per second;
// durations are milliseconds, medians of perfRounds runs.
type perfSnapshot struct {
	GOMAXPROCS int   `json:"gomaxprocs"`
	Seed       int64 `json:"seed"`

	// Day-close analytics (snapshot build + periodicity profiling +
	// feature extraction) over one generated operation day.
	DayCloseVisits       int     `json:"dayCloseVisits"`
	DayCloseSequentialMs float64 `json:"dayCloseSequentialMs"` // Workers=1
	DayCloseParallelMs   float64 `json:"dayCloseParallelMs"`   // Workers=GOMAXPROCS
	DayCloseSpeedup      float64 `json:"dayCloseSpeedup"`

	// The same analytics from per-shard incremental partials (the
	// streaming rollover path): snapshot stage = merge + classification
	// instead of a full re-reduce of the day's visits.
	DayCloseIncrementalSequentialMs float64 `json:"dayCloseIncrementalSequentialMs"`
	DayCloseIncrementalParallelMs   float64 `json:"dayCloseIncrementalParallelMs"`
	// DayCloseIncrementalSpeedup compares incremental vs batch at equal
	// worker counts (sequential/sequential).
	DayCloseIncrementalSpeedup float64 `json:"dayCloseIncrementalSpeedup"`

	// Full streaming day cycle (batched ingest + pipeline rollover),
	// day-closes serialized by per-day Flush vs overlapped with next-day
	// ingest via BeginDay swap-and-continue.
	IngestDays              int     `json:"ingestDays"`
	IngestRecordsPerDay     int     `json:"ingestRecordsPerDay"`
	IngestToReportSerialRps float64 `json:"ingestToReportSerialRecS"`
	IngestToReportPipelined float64 `json:"ingestToReportPipelinedRecS"`

	// The same pipelined cycle fed the way the daemon is fed: each day
	// encoded to proxy TSV and decoded back before the batched ingest —
	// through the zero-copy batch reader vs the retained naive parser. The
	// delta is the decode win in its end-to-end context.
	IngestToReportPipelinedTSV      float64 `json:"ingestToReportPipelinedTSVRecS"`
	IngestToReportPipelinedTSVNaive float64 `json:"ingestToReportPipelinedTSVNaiveRecS"`

	// The rollover ingest-stall (exclusive-lock hold during the buffer
	// swap) vs the background pipeline duration it used to contain.
	RolloverPauseMicros int64 `json:"rolloverPauseMicros"`
	DayCloseMillis      int64 `json:"dayCloseMillis"`

	// The decode path in isolation over one encoded day fragment with
	// realistic value cardinality: the zero-copy batch reader (warm
	// decoder, pooled buffer) vs the retained Split/time.Parse reference,
	// plus the append encoder that replaced fmt.Fprintf. Allocs/record is
	// the steady-state amortized number for the fast path.
	DecodeRecords          int     `json:"decodeRecords"`
	DecodeBytes            int     `json:"decodeBytes"`
	DecodeNaiveRecS        float64 `json:"decodeNaiveRecS"`
	DecodeNaiveMBPerS      float64 `json:"decodeNaiveMBPerS"`
	DecodeFastRecS         float64 `json:"decodeFastRecS"`
	DecodeFastMBPerS       float64 `json:"decodeFastMBPerS"`
	DecodeSpeedup          float64 `json:"decodeSpeedup"`
	DecodeFastAllocsPerRec float64 `json:"decodeFastAllocsPerRecord"`
	EncodeAppendMBPerS     float64 `json:"encodeAppendMBPerS"`

	// Checkpoint format comparison over one high-volume open day: legacy v1
	// (raw-record replay, size proportional to traffic volume) vs v2
	// (domain-keyed builder frames, size proportional to distinct
	// (host, domain) state; restore re-partitions instead of replaying
	// per-record work).
	CheckpointRecords     int     `json:"checkpointRecords"`
	CheckpointV1Bytes     int64   `json:"checkpointV1Bytes"`
	CheckpointV2Bytes     int64   `json:"checkpointV2Bytes"`
	CheckpointV1EncodeMs  float64 `json:"checkpointV1EncodeMs"`
	CheckpointV2EncodeMs  float64 `json:"checkpointV2EncodeMs"`
	CheckpointV1RestoreMs float64 `json:"checkpointV1RestoreMs"`
	CheckpointV2RestoreMs float64 `json:"checkpointV2RestoreMs"`

	// Apply-path metrics: the single-shard batched fold (ingest routed,
	// grouped into domain runs, folded, shard queue drained inside the
	// timed region) and the shard-local history-membership cache — hit
	// rate measured across a committed day boundary, where every scattered
	// domain run re-checks membership and all checks after a domain's
	// first are answerable from the epoch-stamped cache.
	ApplyRecords         int     `json:"applyRecords"`
	ApplySingleShardRecS float64 `json:"applySingleShardRecS"`
	HistCacheHits        uint64  `json:"histCacheHits"`
	HistCacheMisses      uint64  `json:"histCacheMisses"`
	HistCacheHitRate     float64 `json:"histCacheHitRate"`

	// A short in-process soak through the live TCP listener: the loadgen
	// traffic model paced at SoakTargetRecS into an internal/inputs
	// listener feeding the engine. Latency is per framed batch write;
	// drops must be zero at this rate (the snapshot records them so a
	// regression is visible, not fatal).
	SoakSeconds        float64 `json:"soakSeconds"`
	SoakTargetRecS     float64 `json:"soakTargetRecS"`
	SoakAchievedRecS   float64 `json:"soakAchievedRecS"`
	SoakRecords        int64   `json:"soakRecords"`
	SoakDroppedRecords int64   `json:"soakDroppedRecords"`
	SoakP50Micros      int64   `json:"soakP50Micros"`
	SoakP95Micros      int64   `json:"soakP95Micros"`
	SoakP99Micros      int64   `json:"soakP99Micros"`
	SoakHeapPeakBytes  uint64  `json:"soakHeapPeakBytes"`
}

const perfRounds = 3

func medianMs(runs []time.Duration) float64 {
	sort.Slice(runs, func(i, j int) bool { return runs[i] < runs[j] })
	return float64(runs[len(runs)/2].Microseconds()) / 1000
}

// runPerf measures the PR 3 concurrency surfaces and writes the snapshot.
func runPerf(path string, seed int64) error {
	snap := perfSnapshot{GOMAXPROCS: runtime.GOMAXPROCS(0), Seed: seed}

	if err := perfDayClose(&snap, seed); err != nil {
		return err
	}
	if err := perfIngestToReport(&snap); err != nil {
		return err
	}
	if err := perfDecode(&snap); err != nil {
		return err
	}
	if err := perfApply(&snap); err != nil {
		return err
	}
	if err := perfCheckpoint(&snap); err != nil {
		return err
	}
	if err := perfSoak(&snap); err != nil {
		return err
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("perf snapshot written to %s\n%s", path, data)
	return nil
}

// perfDayClose times the pure analytics of one rollover at Workers=1 vs
// Workers=GOMAXPROCS over identical inputs (no history commit, so every
// round replays the same work).
func perfDayClose(snap *perfSnapshot, seed int64) error {
	g := gen.NewEnterprise(gen.EnterpriseConfig{
		Seed: seed, TrainingDays: 5, OperationDays: 1,
		Hosts: 300, PopularDomains: 150, NewRarePerDay: 80,
		BenignAutoPerDay: 10, Campaigns: 4,
	})
	reg := whois.NewRegistry()
	gen.PopulateWHOIS(reg, g.Truth, g.RareRegistrations(), g.DayTime(g.NumDays()))
	hist := profile.NewHistory()
	for d := 0; d < g.Config().TrainingDays; d++ {
		visits, _ := normalize.ReduceProxy(g.Day(d), g.DHCPMap(d))
		profile.NewSnapshot(g.DayTime(d), visits, hist, 10).Commit(hist)
	}
	opDay := g.Config().TrainingDays
	day := g.DayTime(opDay)
	visits, _ := normalize.ReduceProxy(g.Day(opDay), g.DHCPMap(opDay))
	det := ccdetect.NewDetector(&features.Extractor{Hist: hist, Whois: reg})
	snap.DayCloseVisits = len(visits)

	measure := func(workers int) float64 {
		var runs []time.Duration
		for r := 0; r < perfRounds; r++ {
			start := time.Now()
			s := profile.NewSnapshotParallel(day, visits, hist, 10, workers)
			ads := det.FindAutomatedParallel(s, workers)
			det.FillFeaturesParallel(ads, day, workers)
			runs = append(runs, time.Since(start))
		}
		return medianMs(runs)
	}
	snap.DayCloseSequentialMs = measure(1)
	snap.DayCloseParallelMs = measure(0)
	if snap.DayCloseParallelMs > 0 {
		snap.DayCloseSpeedup = snap.DayCloseSequentialMs / snap.DayCloseParallelMs
	}

	// The incremental rollover path: per-shard partials maintained during
	// ingest (untimed — that cost rides the ingest hot path), merged +
	// classified at close. The partials are rebuilt for every round:
	// reusing one set would hand later rounds pre-sorted rare timestamps
	// and understate the merge.
	const shards = 4
	buildParts := func() []*profile.IncrementalBuilder {
		parts := make([]*profile.IncrementalBuilder, shards)
		for i := range parts {
			parts[i] = profile.NewIncrementalBuilder()
		}
		for i := range visits {
			v := &visits[i]
			parts[profile.PairPartition(v.Host, v.Domain, shards)].Add(uint64(i), v)
		}
		return parts
	}
	measureInc := func(workers int) float64 {
		var runs []time.Duration
		for r := 0; r < perfRounds; r++ {
			parts := buildParts()
			start := time.Now()
			s := profile.MergeSnapshotParallel(day, parts, hist, 10, workers)
			ads := det.FindAutomatedParallel(s, workers)
			det.FillFeaturesParallel(ads, day, workers)
			runs = append(runs, time.Since(start))
		}
		return medianMs(runs)
	}
	snap.DayCloseIncrementalSequentialMs = measureInc(1)
	snap.DayCloseIncrementalParallelMs = measureInc(0)
	if snap.DayCloseIncrementalSequentialMs > 0 {
		snap.DayCloseIncrementalSpeedup = snap.DayCloseSequentialMs / snap.DayCloseIncrementalSequentialMs
	}
	return nil
}

// perfIngestToReport drives the streaming engine through several full days
// twice: with day-closes serialized by per-day Flush, and with the
// swap-and-continue overlap (BeginDay rollovers, one final Flush). The
// total work is identical; the difference is the overlap the non-blocking
// rollover buys.
// perfRecords builds n records over a bounded (host, domain) working set —
// the same shape the stream benchmarks use, with valid addresses so the
// records survive a TSV encode/decode round trip.
func perfRecords(n int, base time.Time, step time.Duration) []logs.ProxyRecord {
	recs := make([]logs.ProxyRecord, n)
	for i := range recs {
		recs[i] = logs.ProxyRecord{
			Time:      base.Add(time.Duration(i) * step),
			Host:      fmt.Sprintf("host-%03d", i%64),
			SrcIP:     netip.AddrFrom4([4]byte{10, 1, byte(i % 64), 7}),
			Domain:    fmt.Sprintf("dom-%03d.example.net", i%61),
			DestIP:    netip.AddrFrom4([4]byte{198, 51, 100, byte(i % 61)}),
			URL:       "http://example.net/index.html",
			Method:    "GET",
			Status:    200,
			UserAgent: "bench-agent/1.0",
		}
	}
	return recs
}

// Decode modes for the pipelined ingest cycle.
const (
	decodeNone  = iota // ingest the in-memory records directly
	decodeFast         // encode to TSV, decode via the zero-copy batch reader
	decodeNaive        // encode to TSV, decode via the retained naive parser
)

func perfIngestToReport(snap *perfSnapshot) error {
	// 10 days per round: the first day on a fresh engine pays every cold
	// cost (pool growth, intern tables, histogram state) — enough days
	// amortize it so the figure tracks the steady state the stream
	// benchmarks measure.
	const days, perDay, batchSize = 10, 20000, 512
	snap.IngestDays = days
	snap.IngestRecordsPerDay = perDay
	base := time.Date(2014, 2, 3, 0, 0, 0, 0, time.UTC)
	recs := perfRecords(perDay, base, 0)

	newEngine := func() *stream.Engine {
		pipe := pipeline.NewEnterprise(pipeline.EnterpriseConfig{}, whois.NewRegistry(), nil, nil)
		return stream.New(stream.Config{Shards: 4, QueueDepth: 8192, TrainingDays: 1 << 30}, pipe)
	}
	dec := logs.GetProxyDecoder()
	defer logs.PutProxyDecoder(dec)
	buf := logs.GetProxyBuf(perDay)
	defer func() { logs.PutProxyBuf(buf) }()
	var tsv []byte
	runCycle := func(pipelined bool, decode int) (float64, error) {
		var best float64
		for r := 0; r < perfRounds; r++ {
			e := newEngine()
			start := time.Now()
			for d := 0; d < days; d++ {
				dayT := base.AddDate(0, 0, d)
				if err := e.BeginDay(dayT, nil); err != nil {
					return 0, err
				}
				for i := range recs {
					recs[i].Time = dayT.Add(time.Duration(i) * 4 * time.Millisecond)
				}
				day := recs
				if decode != decodeNone {
					tsv = tsv[:0]
					for _, rec := range recs {
						tsv = logs.AppendProxy(tsv, rec)
					}
					var err error
					if decode == decodeFast {
						buf, err = logs.ReadProxyBatch(bytes.NewReader(tsv), dec, buf[:0])
					} else {
						buf, err = decodeProxyNaive(tsv, buf[:0])
					}
					if err != nil {
						return 0, err
					}
					day = buf
				}
				for i := 0; i < len(day); i += batchSize {
					end := i + batchSize
					if end > len(day) {
						end = len(day)
					}
					if err := e.IngestBatch(day[i:end]); err != nil {
						return 0, err
					}
				}
				if !pipelined {
					if err := e.Flush(); err != nil {
						return 0, err
					}
				}
			}
			if err := e.Flush(); err != nil {
				return 0, err
			}
			rps := float64(days*perDay) / time.Since(start).Seconds()
			if rps > best {
				best = rps
			}
			if pipelined && decode == decodeNone {
				st := e.Stats()
				snap.RolloverPauseMicros = st.LastRolloverPauseMicros
				snap.DayCloseMillis = st.LastDayCloseMillis
			}
			if err := e.Close(); err != nil {
				return 0, err
			}
		}
		return best, nil
	}

	var err error
	if snap.IngestToReportSerialRps, err = runCycle(false, decodeNone); err != nil {
		return err
	}
	if snap.IngestToReportPipelined, err = runCycle(true, decodeNone); err != nil {
		return err
	}
	if snap.IngestToReportPipelinedTSV, err = runCycle(true, decodeFast); err != nil {
		return err
	}
	if snap.IngestToReportPipelinedTSVNaive, err = runCycle(true, decodeNaive); err != nil {
		return err
	}
	return nil
}

// decodeProxyNaive is the pre-PR decode loop: bufio.Scanner framing plus
// the retained naive reference parser.
func decodeProxyNaive(tsv []byte, recs []logs.ProxyRecord) ([]logs.ProxyRecord, error) {
	sc := bufio.NewScanner(bytes.NewReader(tsv))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		rec, err := logs.ParseProxyNaive(sc.Text())
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
	return recs, sc.Err()
}

// perfDecode prices the decode path in isolation: the zero-copy batch
// reader with a warm decoder vs the naive reference over one encoded day
// fragment, plus the append encoder's throughput and the fast path's
// steady-state allocation rate.
func perfDecode(snap *perfSnapshot) error {
	const n = 8192
	base := time.Date(2014, 2, 13, 9, 0, 0, 0, time.UTC)
	recs := perfRecords(n, base, 1500*time.Millisecond)
	var data []byte
	for _, r := range recs {
		data = logs.AppendProxy(data, r)
	}
	snap.DecodeRecords = n
	snap.DecodeBytes = len(data)
	mb := float64(len(data)) / (1 << 20)

	// Append-encoder throughput.
	{
		var best float64
		dst := make([]byte, 0, len(data))
		for r := 0; r < perfRounds; r++ {
			start := time.Now()
			dst = dst[:0]
			for i := range recs {
				dst = logs.AppendProxy(dst, recs[i])
			}
			if rate := mb / time.Since(start).Seconds(); rate > best {
				best = rate
			}
		}
		snap.EncodeAppendMBPerS = best
	}

	// Naive reference decode.
	{
		var best time.Duration
		buf := make([]logs.ProxyRecord, 0, n)
		for r := 0; r < perfRounds; r++ {
			start := time.Now()
			var err error
			if buf, err = decodeProxyNaive(data, buf[:0]); err != nil {
				return err
			}
			if len(buf) != n {
				return fmt.Errorf("naive decode: %d records, want %d", len(buf), n)
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		snap.DecodeNaiveRecS = float64(n) / best.Seconds()
		snap.DecodeNaiveMBPerS = mb / best.Seconds()
	}

	// Zero-copy decode: warm decoder, pooled buffer, plus the amortized
	// allocation rate in the steady state (measured over whole rounds so
	// one-off growth — a new intern entry, a grown framing buffer — is
	// amortized the way it is in production).
	{
		dec := logs.GetProxyDecoder()
		defer logs.PutProxyDecoder(dec)
		buf := logs.GetProxyBuf(n)
		defer func() { logs.PutProxyBuf(buf) }()
		var err error
		if buf, err = logs.ReadProxyBatch(bytes.NewReader(data), dec, buf[:0]); err != nil {
			return err // warm-up round: populate intern and address caches
		}
		var best time.Duration
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		const rounds = 8
		for r := 0; r < rounds; r++ {
			start := time.Now()
			if buf, err = logs.ReadProxyBatch(bytes.NewReader(data), dec, buf[:0]); err != nil {
				return err
			}
			if len(buf) != n {
				return fmt.Errorf("fast decode: %d records, want %d", len(buf), n)
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		runtime.ReadMemStats(&ms1)
		snap.DecodeFastRecS = float64(n) / best.Seconds()
		snap.DecodeFastMBPerS = mb / best.Seconds()
		snap.DecodeFastAllocsPerRec = float64(ms1.Mallocs-ms0.Mallocs) / (rounds * n)
	}
	if snap.DecodeNaiveRecS > 0 {
		snap.DecodeSpeedup = snap.DecodeFastRecS / snap.DecodeNaiveRecS
	}
	return nil
}

// perfApply prices the shard-side batched fold on one shard: warm-day
// IngestBatch rounds with the shard queue drained inside the timed region
// (Stats quiesces), so the number is the apply path's share of the ingest
// budget rather than queue-depth pipelining. It then measures the
// history-membership cache across a day commit: day two trains a
// scattered 61-domain working set into the history, day three re-visits
// it — every domain run re-checks membership, and all checks after a
// domain's first must be cache hits.
func perfApply(snap *perfSnapshot) error {
	const perDay, batchSize = 20000, 512
	base := time.Date(2014, 2, 3, 0, 0, 0, 0, time.UTC)
	recs := perfRecords(perDay, base, 4*time.Millisecond)
	pipe := pipeline.NewEnterprise(pipeline.EnterpriseConfig{}, whois.NewRegistry(), nil, nil)
	e := stream.New(stream.Config{Shards: 1, QueueDepth: 8192, TrainingDays: 1 << 30}, pipe)
	defer e.Close()
	snap.ApplyRecords = perDay

	ingest := func(day []logs.ProxyRecord) error {
		for i := 0; i < len(day); i += batchSize {
			if err := e.IngestBatch(day[i:min(i+batchSize, len(day))]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := e.BeginDay(base, nil); err != nil {
		return err
	}
	if err := ingest(recs); err != nil { // warm: live states, builder, pools
		return err
	}
	_ = e.Stats()
	var best float64
	for r := 0; r < perfRounds; r++ {
		start := time.Now()
		if err := ingest(recs); err != nil {
			return err
		}
		_ = e.Stats() // quiesce: the shard fold lands inside the timing
		if rate := float64(perDay) / time.Since(start).Seconds(); rate > best {
			best = rate
		}
	}
	snap.ApplySingleShardRecS = best

	// Scattered working set: consecutive records on distinct second-level
	// domains, so folding leaves single-record runs and every run performs
	// its own membership check.
	scat := perfRecords(perDay, base, 4*time.Millisecond)
	for i := range scat {
		scat[i].Domain = fmt.Sprintf("scat-%02d.net", i%61)
	}
	for d := 1; d <= 2; d++ {
		dayT := base.AddDate(0, 0, d)
		if err := e.BeginDay(dayT, nil); err != nil { // commits the prior day
			return err
		}
		for i := range scat {
			scat[i].Time = dayT.Add(time.Duration(i) * 4 * time.Millisecond)
		}
		if err := ingest(scat); err != nil {
			return err
		}
		if err := e.Flush(); err != nil {
			return err
		}
	}
	for _, ss := range e.Stats().Shards {
		snap.HistCacheHits += ss.HistCacheHits
		snap.HistCacheMisses += ss.HistCacheMisses
	}
	if total := snap.HistCacheHits + snap.HistCacheMisses; total > 0 {
		snap.HistCacheHitRate = float64(snap.HistCacheHits) / float64(total)
	}
	return nil
}

// perfCheckpoint prices checkpoint encode and restore in both formats over
// the same high-volume open day (many records over a bounded working set of
// (host, domain) pairs — the shape where the v2 builder encoding wins).
func perfCheckpoint(snap *perfSnapshot) error {
	const perDay = 40000
	snap.CheckpointRecords = perDay
	base := time.Date(2014, 2, 3, 0, 0, 0, 0, time.UTC)
	recs := make([]logs.ProxyRecord, perDay)
	for i := range recs {
		recs[i] = logs.ProxyRecord{
			Time:      base.Add(time.Duration(i) * 2 * time.Millisecond),
			Host:      fmt.Sprintf("host-%03d", i%64),
			Domain:    fmt.Sprintf("dom-%03d.example.net", i%61),
			URL:       "http://example.net/index.html",
			Method:    "GET",
			Status:    200,
			UserAgent: "bench-agent/1.0",
		}
	}
	pipe := pipeline.NewEnterprise(pipeline.EnterpriseConfig{}, whois.NewRegistry(), nil, nil)
	e := stream.New(stream.Config{Shards: 4, QueueDepth: 8192, TrainingDays: 1 << 30}, pipe)
	defer e.Close()
	if err := e.BeginDay(base, nil); err != nil {
		return err
	}
	for i := 0; i < perDay; i += 512 {
		end := min(i+512, perDay)
		if err := e.IngestBatch(recs[i:end]); err != nil {
			return err
		}
	}

	type format struct {
		encode    func(w io.Writer) error
		bytes     *int64
		encodeMs  *float64
		restoreMs *float64
	}
	formats := []format{
		{func(w io.Writer) error { return e.CheckpointV1(w, recs) },
			&snap.CheckpointV1Bytes, &snap.CheckpointV1EncodeMs, &snap.CheckpointV1RestoreMs},
		{func(w io.Writer) error { return e.Checkpoint(w) },
			&snap.CheckpointV2Bytes, &snap.CheckpointV2EncodeMs, &snap.CheckpointV2RestoreMs},
	}
	for _, f := range formats {
		var buf bytes.Buffer
		var encRuns, resRuns []time.Duration
		for r := 0; r < perfRounds; r++ {
			buf.Reset()
			start := time.Now()
			if err := f.encode(&buf); err != nil {
				return err
			}
			encRuns = append(encRuns, time.Since(start))

			start = time.Now()
			restored, err := stream.Restore(bytes.NewReader(buf.Bytes()),
				stream.Config{Shards: 4, QueueDepth: 8192}, stream.RestoreDeps{})
			if err != nil {
				return err
			}
			_ = restored.Stats() // quiesce: include any queued replay work
			resRuns = append(resRuns, time.Since(start))
			if err := restored.Close(); err != nil {
				return err
			}
		}
		*f.bytes = int64(buf.Len())
		*f.encodeMs = medianMs(encRuns)
		*f.restoreMs = medianMs(resRuns)
	}
	return nil
}

// perfSoak runs the heavy-traffic harness end to end in-process: loadgen's
// traffic model paced over a real TCP connection into a live framed
// listener feeding the engine. One round, not a median — a soak's variance
// is itself part of what the percentiles report.
func perfSoak(snap *perfSnapshot) error {
	const (
		soakRate     = 25000.0
		soakDuration = 3 * time.Second
	)
	pipe := pipeline.NewEnterprise(pipeline.EnterpriseConfig{}, whois.NewRegistry(), nil, nil)
	e := stream.New(stream.Config{Shards: 4, QueueDepth: 8192, TrainingDays: 1 << 30}, pipe)
	defer e.Close()
	l, err := inputs.Listen(e, "127.0.0.1:0", inputs.Config{Name: "soak", Framing: inputs.FramingNewline})
	if err != nil {
		return err
	}
	defer l.Close()
	m := loadgen.NewModel(loadgen.ModelConfig{Seed: snap.Seed})
	if err := e.BeginDay(m.Day(), nil); err != nil {
		return err
	}
	res, err := loadgen.Run(loadgen.DriverConfig{
		Mode: "tcp", Addr: l.Addr().String(), Framing: inputs.FramingNewline,
		Rate: soakRate, Duration: soakDuration, Batch: 512,
	}, m)
	if err != nil {
		return err
	}
	// Let the listener drain the tail so the drop counters are final.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := l.Stats()
		if st.Records+st.SheddedRecords+st.RejectedRecords >= res.SentRecords {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := l.Stats()
	snap.SoakSeconds = soakDuration.Seconds()
	snap.SoakTargetRecS = res.TargetRecS
	snap.SoakAchievedRecS = res.AchievedRecS
	snap.SoakRecords = res.SentRecords
	snap.SoakDroppedRecords = st.SheddedRecords + st.RejectedRecords
	snap.SoakP50Micros = res.P50Micros
	snap.SoakP95Micros = res.P95Micros
	snap.SoakP99Micros = res.P99Micros
	snap.SoakHeapPeakBytes = res.HeapPeakBytes
	return nil
}
