package main

import (
	"strings"
	"testing"
)

func TestReportCoversEveryArtifact(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 21, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Table I:", "Table II:", "Table III:",
		"Figure 2:", "Figure 3:", "Figure 4:",
		"Figure 5:", "Figure 6(a):", "Figure 6(b):", "Figure 6(c):",
		"Figure 7", "Figure 8",
		"Detection clusters",
		"Ablation A1:", "Ablation A2:", "Ablation A3:", "Ablation A4:", "Ablation A5:",
		"Generality:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
