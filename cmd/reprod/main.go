// Command reprod is the long-running streaming detector: the daemon
// counterpart of the daily-batch deployment the paper describes. It ingests
// proxy records over HTTP (or replays an on-disk dataset), shards them
// across cores via internal/stream, and serves the same SOC reports the
// batch pipelines produce.
//
// Usage:
//
//	reprod [-addr :8714] [-shards N] [-workers N] [-seed N] [-full]
//	       [-replay DIR] [-speed X]
//	       [-checkpoint FILE] [-checkpoint-interval D] [-max-ingest-bytes N]
//	       [-alert-config FILE] [-preview-interval D]
//
// Because the paper's intelligence externals (VirusTotal, SOC IOC lists,
// WHOIS) are simulated, the daemon synthesizes them from the dataset seed:
// -seed must match the seed the dataset was generated with for calibration
// labels to resolve (the same contract cmd/entdetect has).
//
// # HTTP API
//
//	POST /day               {"date":"YYYY-MM-DD","leases":{"ip":"host",...}}
//	                        opens a day (completing the previous one)
//	POST /ingest            TSV proxy records (the internal/logs codec),
//	                        ingested as one atomic batch; responds 429 when
//	                        shards lag, 413 over -max-ingest-bytes
//	POST /flush             completes the open day (retrying a failed
//	                        day-close first; 409 names the failed day)
//	POST /checkpoint        writes the engine state to -checkpoint
//	GET  /report/YYYY-MM-DD the day's SOC report (JSON); 202 + Retry-After
//	                        while the day's close still runs in the background
//	GET  /reports           completed days
//	GET  /stats             engine statistics, live beaconing pairs,
//	                        day-close state (closing/closeFailed, last
//	                        rollover pause, last pipeline duration), last
//	                        preview timings, and alert counters
//	GET  /preview           a fresh mid-day detection preview: the report a
//	                        rollover right now would publish, computed from
//	                        a clone without closing the day (409 when no day
//	                        is open)
//	GET  /alerts/stats      alert dispatcher counters (published, sent,
//	                        dropped, per-sink queue depth and last error)
//	GET  /healthz           liveness
//
// # Alerting
//
// -alert-config FILE (TOML or JSON; see internal/alert) wires detection
// output to webhook/syslog/file sinks: day-close reports publish confirmed
// events, and with -preview-interval set, periodic previews publish
// provisional events (plus health events when previews fail). Delivery is
// best-effort by construction — a slow or dead sink drops alerts (counted
// in /alerts/stats), never stalls ingestion or day-close.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/alert"
	"repro/internal/batch"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/intel"
	"repro/internal/pipeline"
	"repro/internal/report"
	"repro/internal/stream"
	"repro/internal/whois"
)

// daemonOpts carries the parsed command-line configuration.
type daemonOpts struct {
	addr         string
	shards       int
	queue        int
	seed         int64
	full         bool
	training     int
	workers      int
	replay       string
	speed        float64
	checkpoint   string
	ckptInterval time.Duration
	maxIngest    int64
	alertConfig  string
	previewEvery time.Duration
}

func main() {
	var o daemonOpts
	flag.StringVar(&o.addr, "addr", ":8714", "HTTP listen address")
	flag.IntVar(&o.shards, "shards", 0, "ingest shards (0 = GOMAXPROCS)")
	flag.IntVar(&o.queue, "queue", 0, "per-shard queue depth (0 = default)")
	flag.Int64Var(&o.seed, "seed", 1, "dataset seed for the simulated WHOIS/intel externals")
	flag.BoolVar(&o.full, "full", false, "size the externals for the full-scale dataset")
	flag.IntVar(&o.training, "training", 0, "training days (0 = the scale's default)")
	flag.IntVar(&o.workers, "workers", 0, "day-close pipeline workers for operators co-locating the daemon (1 = sequential; 0 = GOMAXPROCS on a fresh start, keeps the checkpointed value on restore)")
	flag.StringVar(&o.replay, "replay", "", "replay a cmd/datagen enterprise dataset directory, then keep serving")
	flag.Float64Var(&o.speed, "speed", 0, "replay time-compression factor (0 = as fast as possible)")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "checkpoint file: restored on start if present, written on rollover and shutdown")
	flag.DurationVar(&o.ckptInterval, "checkpoint-interval", 0, "also write the checkpoint periodically (e.g. 15m; 0 = rollover/shutdown only; requires -checkpoint); format v2 checkpoints no longer wait out an in-flight day-close")
	flag.Int64Var(&o.maxIngest, "max-ingest-bytes", defaultMaxIngestBytes, "largest accepted /ingest body in bytes (oversized requests get 413)")
	flag.StringVar(&o.alertConfig, "alert-config", "", "alert routing configuration (TOML or JSON): sinks (webhook/syslog/file/stdout) and rules; day-close reports publish confirmed alert events")
	flag.DurationVar(&o.previewEvery, "preview-interval", 0, "run a mid-day detection preview periodically (e.g. 5m; 0 = off), publishing provisional alert events")
	flag.Parse()

	if o.ckptInterval > 0 && o.checkpoint == "" {
		fmt.Fprintln(os.Stderr, "-checkpoint-interval requires -checkpoint (there is no file to write to)")
		os.Exit(2)
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// newEngine builds (or restores, when a checkpoint file exists) the
// streaming engine the daemon serves, per the parsed flags. Separated from
// run so the flag-plumbing tests can exercise it without a listening
// daemon.
func newEngine(o daemonOpts, engCfg stream.Config) (*stream.Engine, error) {
	scale := eval.ScaleSmall
	if o.full {
		scale = eval.ScaleFull
	}
	genCfg := eval.EnterpriseScale(scale, o.seed)

	// The simulated externals. Deterministic in the seed, so a daemon
	// restarted against the same dataset reconstructs the same oracle.
	g := gen.NewEnterprise(genCfg)
	if engCfg.TrainingDays == 0 {
		// The generator's defaulted config, not genCfg: the full-scale
		// preset leaves TrainingDays zero for gen to default.
		engCfg.TrainingDays = g.Config().TrainingDays
	}
	reg := whois.NewRegistry()
	gen.PopulateWHOIS(reg, g.Truth, g.RareRegistrations(), g.DayTime(g.NumDays()))
	oracle := intel.NewOracle()
	gen.PopulateOracle(oracle, g.Truth, gen.OracleConfig{Seed: o.seed})

	calDays := 7
	if o.full {
		calDays = 14
	}

	deps := stream.RestoreDeps{Whois: reg, Reported: oracle.Reported, IOCs: oracle.IOCs, Workers: o.workers}
	if o.checkpoint != "" {
		f, err := os.Open(o.checkpoint)
		switch {
		case err == nil:
			restored, rerr := stream.Restore(f, engCfg, deps)
			f.Close()
			if rerr != nil {
				// A corrupt or truncated checkpoint must stop the daemon
				// here, with the cause: silently starting fresh would
				// overwrite it and destroy the behavioural history.
				return nil, fmt.Errorf("restore checkpoint %s: %w (remove or repair the file to start fresh)", o.checkpoint, rerr)
			}
			log.Printf("restored from %s: %d days done", o.checkpoint, restored.DaysDone())
			return restored, nil
		case !os.IsNotExist(err):
			// Anything but a clean absence must stop the daemon: starting
			// fresh would overwrite the checkpoint and destroy the history.
			return nil, fmt.Errorf("open checkpoint %s: %w", o.checkpoint, err)
		}
	}
	pipe := pipeline.NewEnterprise(pipeline.EnterpriseConfig{CalibrationDays: calDays, Workers: o.workers},
		reg, oracle.Reported, oracle.IOCs)
	return stream.New(engCfg, pipe), nil
}

func run(o daemonOpts) error {
	// The alert dispatcher outlives the engine teardown path: Publish never
	// blocks, and Close (deferred) flushes what the sinks can still take.
	var alerts *alert.Dispatcher
	if o.alertConfig != "" {
		acfg, err := alert.LoadConfig(o.alertConfig)
		if err != nil {
			return fmt.Errorf("alert config %s: %w", o.alertConfig, err)
		}
		alerts, err = alert.NewDispatcherFromConfig(acfg)
		if err != nil {
			return fmt.Errorf("alert config %s: %w", o.alertConfig, err)
		}
		defer alerts.Close()
		log.Printf("alerting to %d sinks via %s", len(acfg.Sinks), o.alertConfig)
	}

	// OnReport fires while the engine is frozen for rollover, so the
	// checkpoint (which re-freezes it) is kicked to a separate goroutine.
	// Alert publishing, by contrast, is safe inline: Publish is a
	// non-blocking counter bump + channel send by contract.
	rolledOver := make(chan struct{}, 1)
	engCfg := stream.Config{
		Shards: o.shards, QueueDepth: o.queue, TrainingDays: o.training,
		OnReport: func(rep pipeline.EnterpriseDayReport, daily *report.Daily) {
			if daily == nil {
				log.Printf("day %s trained: %d records, %d rare", rep.Day.Format("2006-01-02"),
					rep.Stats.Records, rep.RareCount)
			} else {
				log.Printf("day %s processed: %d records, %d rare, %d automated, %d suspicious domains",
					rep.Day.Format("2006-01-02"), rep.Stats.Records, rep.RareCount,
					len(rep.Automated), len(daily.Domains))
				if alerts != nil {
					for _, ev := range alert.EventsFromDaily(*daily, alert.KindConfirmed, time.Now()) {
						alerts.Publish(ev)
					}
				}
			}
			select {
			case rolledOver <- struct{}{}:
			default:
			}
		},
	}
	e, err := newEngine(o, engCfg)
	if err != nil {
		return err
	}

	srv := newServer(e, o.checkpoint, o.maxIngest, alerts)
	httpSrv := &http.Server{Addr: o.addr, Handler: srv.mux()}

	errc := make(chan error, 2)
	go func() {
		log.Printf("reprod listening on %s", o.addr)
		errc <- httpSrv.ListenAndServe()
	}()
	go func() {
		for range rolledOver {
			if err := srv.writeCheckpoint(); err != nil {
				log.Printf("checkpoint after rollover: %v", err)
			}
		}
	}()
	if o.checkpoint != "" && o.ckptInterval > 0 {
		go srv.runPeriodicCheckpoints(o.ckptInterval, nil)
	}
	if o.previewEvery > 0 {
		go srv.runPreviewLoop(o.previewEvery, nil)
	}

	if o.replay != "" {
		go func() {
			start := time.Now()
			err := stream.ReplayDir(e, o.replay, stream.ReplayOptions{
				Speed: o.speed,
				OnDay: func(d batch.Day, records int) {
					log.Printf("replaying %s (%d records)", d.Date.Format("2006-01-02"), records)
				},
			})
			if err != nil {
				errc <- fmt.Errorf("replay: %w", err)
				return
			}
			log.Printf("replay of %s done in %v; serving reports", o.replay, time.Since(start).Round(time.Millisecond))
			if cerr := srv.writeCheckpoint(); cerr != nil {
				log.Printf("checkpoint: %v", cerr)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		log.Printf("received %v, checkpointing and shutting down", s)
		if err := srv.writeCheckpoint(); err != nil {
			log.Printf("checkpoint: %v", err)
		}
		return httpSrv.Close()
	}
}
