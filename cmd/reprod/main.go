// Command reprod is the long-running streaming detector: the daemon
// counterpart of the daily-batch deployment the paper describes. It ingests
// proxy records over HTTP (or replays an on-disk dataset), shards them
// across cores via internal/stream, and serves the same SOC reports the
// batch pipelines produce.
//
// Usage:
//
//	reprod [-addr :8714] [-shards N] [-workers N] [-seed N] [-full]
//	       [-replay DIR] [-speed X]
//	       [-checkpoint FILE] [-checkpoint-interval D] [-max-ingest-bytes N]
//	       [-alert-config FILE] [-preview-interval D]
//	       [-listen-tcp ADDR] [-listen-syslog ADDR] [-listen-flow ADDR]
//
// Because the paper's intelligence externals (VirusTotal, SOC IOC lists,
// WHOIS) are simulated, the daemon synthesizes them from the dataset seed:
// -seed must match the seed the dataset was generated with for calibration
// labels to resolve (the same contract cmd/entdetect has).
//
// # HTTP API
//
//	POST /day               {"date":"YYYY-MM-DD","leases":{"ip":"host",...}}
//	                        opens a day (completing the previous one)
//	POST /ingest            TSV proxy records (the internal/logs codec),
//	                        ingested as one atomic batch; responds 429 when
//	                        shards lag, 413 over -max-ingest-bytes
//	POST /flush             completes the open day (retrying a failed
//	                        day-close first; 409 names the failed day)
//	POST /checkpoint        writes the engine state to -checkpoint
//	GET  /report/YYYY-MM-DD the day's SOC report (JSON); 202 + Retry-After
//	                        while the day's close still runs in the background
//	GET  /reports           completed days
//	GET  /stats             engine statistics, live beaconing pairs,
//	                        day-close state (closing/closeFailed, last
//	                        rollover pause, last pipeline duration), last
//	                        preview timings, and alert counters
//	GET  /preview           a fresh mid-day detection preview: the report a
//	                        rollover right now would publish, computed from
//	                        a clone without closing the day (409 when no day
//	                        is open)
//	GET  /alerts/stats      alert dispatcher counters (published, sent,
//	                        dropped, per-sink queue depth and last error)
//	GET  /healthz           liveness
//
// # Live listeners
//
// Beyond TSV-over-HTTP, the daemon ingests framed TCP feeds (see
// internal/inputs): -listen-tcp accepts newline-delimited proxy TSV
// records, -listen-syslog accepts RFC 6587 octet-counted frames carrying
// an RFC 5424 header whose message is one proxy TSV record, and
// -listen-flow accepts newline-delimited netflow TSV records embedded
// through the flow reduction's filters. TCP cannot answer 429, so a
// lagging engine sheds listener batches with counted drops; per-listener
// counters (frames, records, sheds, malformed) appear under "inputs" in
// GET /stats. Days are still opened via POST /day (or replay): listener
// records arriving with no day open are counted as rejected, not buffered.
//
// # Alerting
//
// -alert-config FILE (TOML or JSON; see internal/alert) wires detection
// output to webhook/syslog/file sinks: day-close reports publish confirmed
// events, and with -preview-interval set, periodic previews publish
// provisional events (plus health events when previews fail). Delivery is
// best-effort by construction — a slow or dead sink drops alerts (counted
// in /alerts/stats), never stalls ingestion or day-close.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/alert"
	"repro/internal/batch"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/inputs"
	"repro/internal/intel"
	"repro/internal/pipeline"
	"repro/internal/report"
	"repro/internal/stream"
	"repro/internal/whois"
)

// daemonOpts carries the parsed command-line configuration.
type daemonOpts struct {
	addr         string
	shards       int
	queue        int
	shedThresh   float64
	seed         int64
	full         bool
	training     int
	workers      int
	replay       string
	speed        float64
	checkpoint   string
	ckptInterval time.Duration
	maxIngest    int64
	alertConfig  string
	previewEvery time.Duration
	listenTCP    string
	listenSyslog string
	listenFlow   string
}

func main() {
	var o daemonOpts
	flag.StringVar(&o.addr, "addr", ":8714", "HTTP listen address")
	flag.IntVar(&o.shards, "shards", 0, "ingest shards (0 = GOMAXPROCS)")
	flag.IntVar(&o.queue, "queue", 0, "per-shard queue depth (0 = default)")
	flag.Float64Var(&o.shedThresh, "shed-threshold", 0, "queue-fullness fraction (0,1] at which ingestion sheds load — HTTP answers 429 and the TCP/syslog/flow listeners drop records (0 = default 0.9)")
	flag.Int64Var(&o.seed, "seed", 1, "dataset seed for the simulated WHOIS/intel externals")
	flag.BoolVar(&o.full, "full", false, "size the externals for the full-scale dataset")
	flag.IntVar(&o.training, "training", 0, "training days (0 = the scale's default)")
	flag.IntVar(&o.workers, "workers", 0, "day-close pipeline workers for operators co-locating the daemon (1 = sequential; 0 = GOMAXPROCS on a fresh start, keeps the checkpointed value on restore)")
	flag.StringVar(&o.replay, "replay", "", "replay a cmd/datagen enterprise dataset directory, then keep serving")
	flag.Float64Var(&o.speed, "speed", 0, "replay time-compression factor (0 = as fast as possible)")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "checkpoint file: restored on start if present, written on rollover and shutdown")
	flag.DurationVar(&o.ckptInterval, "checkpoint-interval", 0, "also write the checkpoint periodically (e.g. 15m; 0 = rollover/shutdown only; requires -checkpoint); format v2 checkpoints no longer wait out an in-flight day-close")
	flag.Int64Var(&o.maxIngest, "max-ingest-bytes", defaultMaxIngestBytes, "largest accepted /ingest body in bytes (oversized requests get 413)")
	flag.StringVar(&o.alertConfig, "alert-config", "", "alert routing configuration (TOML or JSON): sinks (webhook/syslog/file/stdout) and rules; day-close reports publish confirmed alert events")
	flag.DurationVar(&o.previewEvery, "preview-interval", 0, "run a mid-day detection preview periodically (e.g. 5m; 0 = off), publishing provisional alert events")
	flag.StringVar(&o.listenTCP, "listen-tcp", "", "also ingest newline-framed proxy TSV records on this TCP address")
	flag.StringVar(&o.listenSyslog, "listen-syslog", "", "also ingest RFC 6587 octet-counted RFC 5424 syslog frames (proxy TSV message body) on this TCP address")
	flag.StringVar(&o.listenFlow, "listen-flow", "", "also ingest newline-framed netflow TSV records on this TCP address")
	flag.Parse()

	if o.ckptInterval > 0 && o.checkpoint == "" {
		fmt.Fprintln(os.Stderr, "-checkpoint-interval requires -checkpoint (there is no file to write to)")
		os.Exit(2)
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// newEngine builds (or restores, when a checkpoint file exists) the
// streaming engine the daemon serves, per the parsed flags. Separated from
// run so the flag-plumbing tests can exercise it without a listening
// daemon.
func newEngine(o daemonOpts, engCfg stream.Config) (*stream.Engine, error) {
	scale := eval.ScaleSmall
	if o.full {
		scale = eval.ScaleFull
	}
	genCfg := eval.EnterpriseScale(scale, o.seed)

	// The simulated externals. Deterministic in the seed, so a daemon
	// restarted against the same dataset reconstructs the same oracle.
	g := gen.NewEnterprise(genCfg)
	if engCfg.TrainingDays == 0 {
		// The generator's defaulted config, not genCfg: the full-scale
		// preset leaves TrainingDays zero for gen to default.
		engCfg.TrainingDays = g.Config().TrainingDays
	}
	reg := whois.NewRegistry()
	gen.PopulateWHOIS(reg, g.Truth, g.RareRegistrations(), g.DayTime(g.NumDays()))
	oracle := intel.NewOracle()
	gen.PopulateOracle(oracle, g.Truth, gen.OracleConfig{Seed: o.seed})

	calDays := 7
	if o.full {
		calDays = 14
	}

	deps := stream.RestoreDeps{Whois: reg, Reported: oracle.Reported, IOCs: oracle.IOCs, Workers: o.workers}
	if o.checkpoint != "" {
		f, err := os.Open(o.checkpoint)
		switch {
		case err == nil:
			restored, rerr := stream.Restore(f, engCfg, deps)
			f.Close()
			if rerr != nil {
				// A corrupt or truncated checkpoint must stop the daemon
				// here, with the cause: silently starting fresh would
				// overwrite it and destroy the behavioural history.
				return nil, fmt.Errorf("restore checkpoint %s: %w (remove or repair the file to start fresh)", o.checkpoint, rerr)
			}
			log.Printf("restored from %s: %d days done", o.checkpoint, restored.DaysDone())
			return restored, nil
		case !os.IsNotExist(err):
			// Anything but a clean absence must stop the daemon: starting
			// fresh would overwrite the checkpoint and destroy the history.
			return nil, fmt.Errorf("open checkpoint %s: %w", o.checkpoint, err)
		}
	}
	pipe := pipeline.NewEnterprise(pipeline.EnterpriseConfig{CalibrationDays: calDays, Workers: o.workers},
		reg, oracle.Reported, oracle.IOCs)
	return stream.New(engCfg, pipe), nil
}

// shutdownGrace bounds each stage of the ordered shutdown: draining
// in-flight HTTP requests, and waiting out an in-flight day-close.
const shutdownGrace = 10 * time.Second

// daemon owns the running pieces of one reprod process and the order they
// are torn down in. The shutdown sequence is the data-safety contract:
// every record the daemon acknowledged — a 200 on /ingest, a completed
// listener batch — must be inside the final checkpoint.
type daemon struct {
	o       daemonOpts
	eng     *stream.Engine
	srv     *server
	httpSrv *http.Server
	httpLn  net.Listener
	alerts  *alert.Dispatcher
	inputs  []*inputs.Listener

	// stop ends the background loops (periodic checkpoints, previews) and
	// interrupts a running replay; rolledOver carries the engine's
	// "day completed" pulses to the rollover-checkpoint goroutine and is
	// closed only once the engine is quiesced.
	stop       chan struct{}
	rolledOver chan struct{}
	errc       chan error
	replayWG   sync.WaitGroup
	loopWG     sync.WaitGroup

	shutdownOnce sync.Once
	shutdownErr  error
}

// newDaemon builds every component and binds every socket, so address
// errors surface before any goroutine starts and tests learn the real
// ports from an ":0" bind.
func newDaemon(o daemonOpts) (*daemon, error) {
	var err error
	d := &daemon{
		o:          o,
		stop:       make(chan struct{}),
		rolledOver: make(chan struct{}, 1),
		errc:       make(chan error, 4),
	}
	// The alert dispatcher outlives the engine teardown path: Publish
	// never blocks, and Close flushes what the sinks can still take.
	defer func() {
		if err != nil {
			d.closeSockets()
		}
	}()
	if o.alertConfig != "" {
		var acfg alert.Config
		if acfg, err = alert.LoadConfig(o.alertConfig); err != nil {
			return nil, fmt.Errorf("alert config %s: %w", o.alertConfig, err)
		}
		if d.alerts, err = alert.NewDispatcherFromConfig(acfg); err != nil {
			return nil, fmt.Errorf("alert config %s: %w", o.alertConfig, err)
		}
		log.Printf("alerting to %d sinks via %s", len(acfg.Sinks), o.alertConfig)
	}

	// OnReport fires while the engine is frozen for rollover, so the
	// checkpoint (which re-freezes it) is kicked to a separate goroutine.
	// Alert publishing, by contrast, is safe inline: Publish is a
	// non-blocking counter bump + channel send by contract.
	engCfg := stream.Config{
		Shards: o.shards, QueueDepth: o.queue, TrainingDays: o.training,
		ShedThreshold: o.shedThresh,
		OnReport: func(rep pipeline.EnterpriseDayReport, daily *report.Daily) {
			if daily == nil {
				log.Printf("day %s trained: %d records, %d rare", rep.Day.Format("2006-01-02"),
					rep.Stats.Records, rep.RareCount)
			} else {
				log.Printf("day %s processed: %d records, %d rare, %d automated, %d suspicious domains",
					rep.Day.Format("2006-01-02"), rep.Stats.Records, rep.RareCount,
					len(rep.Automated), len(daily.Domains))
				if d.alerts != nil {
					for _, ev := range alert.EventsFromDaily(*daily, alert.KindConfirmed, time.Now()) {
						d.alerts.Publish(ev)
					}
				}
			}
			select {
			case d.rolledOver <- struct{}{}:
			default:
			}
		},
	}
	d.eng, err = newEngine(o, engCfg)
	if err != nil {
		return nil, err
	}

	d.srv = newServer(d.eng, o.checkpoint, o.maxIngest, d.alerts)
	d.httpLn, err = net.Listen("tcp", o.addr)
	if err != nil {
		return nil, err
	}
	d.httpSrv = &http.Server{Handler: d.srv.mux()}

	// The live listeners bind here but accept immediately: the engine is
	// already able to ingest (or to count rejections when no day is open).
	type spec struct {
		addr string
		cfg  inputs.Config
	}
	specs := []spec{
		{o.listenTCP, inputs.Config{Name: "tcp", Framing: inputs.FramingNewline, Format: inputs.FormatProxy}},
		{o.listenSyslog, inputs.Config{Name: "syslog", Framing: inputs.FramingOctet, Format: inputs.FormatProxy, SyslogHeader: true}},
		{o.listenFlow, inputs.Config{Name: "flow", Framing: inputs.FramingNewline, Format: inputs.FormatFlow}},
	}
	for _, sp := range specs {
		if sp.addr == "" {
			continue
		}
		sp.cfg.Logf = log.Printf
		var l *inputs.Listener
		if l, err = inputs.Listen(d.eng, sp.addr, sp.cfg); err != nil {
			return nil, err
		}
		log.Printf("ingesting %s records on %s", sp.cfg.Name, l.Addr())
		d.inputs = append(d.inputs, l)
	}
	d.srv.inputs = d.inputs
	return d, nil
}

// closeSockets releases everything newDaemon bound — the bail-out path
// when construction fails partway.
func (d *daemon) closeSockets() {
	for _, l := range d.inputs {
		l.Close()
	}
	if d.httpLn != nil {
		d.httpLn.Close()
	}
	if d.alerts != nil {
		d.alerts.Close()
	}
}

// start launches the daemon's goroutines: the HTTP server, the
// rollover-checkpoint consumer, the optional periodic-checkpoint and
// preview loops, and the optional replay.
func (d *daemon) start() {
	go func() {
		log.Printf("reprod listening on %s", d.httpLn.Addr())
		if err := d.httpSrv.Serve(d.httpLn); !errors.Is(err, http.ErrServerClosed) {
			d.errc <- err
		}
	}()
	d.loopWG.Add(1)
	go func() {
		defer d.loopWG.Done()
		for range d.rolledOver {
			if err := d.srv.writeCheckpoint(); err != nil {
				log.Printf("checkpoint after rollover: %v", err)
			}
		}
	}()
	if d.o.checkpoint != "" && d.o.ckptInterval > 0 {
		d.loopWG.Add(1)
		go func() {
			defer d.loopWG.Done()
			d.srv.runPeriodicCheckpoints(d.o.ckptInterval, d.stop)
		}()
	}
	if d.o.previewEvery > 0 {
		d.loopWG.Add(1)
		go func() {
			defer d.loopWG.Done()
			d.srv.runPreviewLoop(d.o.previewEvery, d.stop)
		}()
	}
	if d.o.replay != "" {
		d.replayWG.Add(1)
		go func() {
			defer d.replayWG.Done()
			start := time.Now()
			err := stream.ReplayDir(d.eng, d.o.replay, stream.ReplayOptions{
				Speed: d.o.speed,
				Stop:  d.stop,
				OnDay: func(day batch.Day, records int) {
					log.Printf("replaying %s (%d records)", day.Date.Format("2006-01-02"), records)
				},
			})
			switch {
			case errors.Is(err, stream.ErrStopped):
				log.Printf("replay of %s interrupted by shutdown", d.o.replay)
				return
			case err != nil:
				d.errc <- fmt.Errorf("replay: %w", err)
				return
			}
			log.Printf("replay of %s done in %v; serving reports", d.o.replay, time.Since(start).Round(time.Millisecond))
			if cerr := d.srv.writeCheckpoint(); cerr != nil {
				log.Printf("checkpoint: %v", cerr)
			}
		}()
	}
}

// shutdown tears the daemon down in acknowledgment-safe order and writes
// the final checkpoint last, so the snapshot covers everything any client
// was told succeeded. Idempotent; later calls return the first result.
func (d *daemon) shutdown() error {
	d.shutdownOnce.Do(func() { d.shutdownErr = d.doShutdown() })
	return d.shutdownErr
}

func (d *daemon) doShutdown() error {
	// 1. Stop HTTP intake gracefully: no new connections, in-flight
	// requests run to completion so their 200s are honest. A wedged
	// handler falls back to a hard close after the grace period.
	ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := d.httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v; closing remaining connections", err)
		d.httpSrv.Close()
	}
	// 2. Stop the live listeners: Close unblocks every connection read and
	// waits for the handlers to deliver their pending parsed batches.
	for _, l := range d.inputs {
		l.Close()
	}
	// 3. Stop the background loops and interrupt a running replay at its
	// next batch boundary.
	close(d.stop)
	d.replayWG.Wait()
	// 4. Quiesce the engine: wait out an in-flight day-close. After this,
	// with every ingest source stopped and no close pending, nothing can
	// fire OnReport again — so closing rolledOver is safe, and the
	// rollover-checkpoint goroutine drains any pending pulse and exits.
	d.awaitCloseDrained()
	close(d.rolledOver)
	d.loopWG.Wait()
	// 5. Only now snapshot: the checkpoint sees every acknowledged record
	// and the completed day history.
	if err := d.srv.writeCheckpoint(); err != nil {
		return fmt.Errorf("shutdown checkpoint: %w", err)
	}
	if d.alerts != nil {
		d.alerts.Close()
	}
	return nil
}

// awaitCloseDrained polls out the background day-close, bounded by the
// shutdown grace period — a hung pipeline must not make SIGTERM hang
// forever; the checkpoint format tolerates an in-flight close either way.
func (d *daemon) awaitCloseDrained() {
	deadline := time.Now().Add(shutdownGrace)
	for {
		if _, pending := d.eng.PendingClose(); !pending {
			return
		}
		if time.Now().After(deadline) {
			log.Printf("day-close still running after %v; checkpointing around it", shutdownGrace)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func run(o daemonOpts) error {
	d, err := newDaemon(o)
	if err != nil {
		return err
	}
	d.start()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-d.errc:
		// Fatal component failure (HTTP serve, replay): still run the
		// ordered shutdown so acknowledged records reach the checkpoint,
		// but report the original failure.
		if serr := d.shutdown(); serr != nil {
			log.Printf("shutdown after failure: %v", serr)
		}
		return err
	case s := <-sig:
		log.Printf("received %v, shutting down", s)
		return d.shutdown()
	}
}
