package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/logs"
	"repro/internal/pipeline"
	"repro/internal/stream"
	"repro/internal/whois"
)

func testServer(t *testing.T, ckpt string) (*server, *stream.Engine) {
	t.Helper()
	pipe := pipeline.NewEnterprise(pipeline.EnterpriseConfig{}, whois.NewRegistry(), nil, nil)
	e := stream.New(stream.Config{Shards: 2, TrainingDays: 1 << 30}, pipe)
	t.Cleanup(func() { e.Close() })
	return newServer(e, ckpt), e
}

func doJSON(t *testing.T, h http.Handler, method, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	out := make(map[string]any)
	if rr.Body.Len() > 0 {
		if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
			t.Fatalf("%s %s: bad JSON response %q: %v", method, path, rr.Body.String(), err)
		}
	}
	return rr, out
}

func proxyTSV(t *testing.T, recs []logs.ProxyRecord) string {
	t.Helper()
	var buf bytes.Buffer
	w := logs.NewProxyWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func testRecords(day time.Time, n int) []logs.ProxyRecord {
	recs := make([]logs.ProxyRecord, n)
	for i := range recs {
		recs[i] = logs.ProxyRecord{
			Time:   day.Add(time.Duration(i) * time.Minute),
			Host:   fmt.Sprintf("host-%d", i%7),
			SrcIP:  netip.MustParseAddr("10.0.0.1"),
			Domain: fmt.Sprintf("site-%d.example.org", i%5),
			Method: "GET", Status: 200,
		}
	}
	return recs
}

func TestHTTPLifecycle(t *testing.T) {
	srv, eng := testServer(t, "")
	m := srv.mux()
	day := time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC)

	rr, body := doJSON(t, m, "GET", "/healthz", "")
	if rr.Code != http.StatusOK || body["ok"] != true {
		t.Fatalf("healthz = %d %v", rr.Code, body)
	}

	// Ingesting before a day is open conflicts.
	rr, _ = doJSON(t, m, "POST", "/ingest", proxyTSV(t, testRecords(day, 3)))
	if rr.Code != http.StatusConflict {
		t.Fatalf("ingest without day = %d, want 409", rr.Code)
	}

	rr, _ = doJSON(t, m, "POST", "/day", `{"date":"2014-03-01","leases":{"10.0.0.1":"lease-host"}}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("day open = %d", rr.Code)
	}
	rr, body = doJSON(t, m, "POST", "/ingest", proxyTSV(t, testRecords(day, 40)))
	if rr.Code != http.StatusOK || body["ingested"] != float64(40) {
		t.Fatalf("ingest = %d %v", rr.Code, body)
	}
	rr, _ = doJSON(t, m, "POST", "/flush", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("flush = %d", rr.Code)
	}
	if got := eng.DaysDone(); got != 1 {
		t.Fatalf("DaysDone = %d", got)
	}

	rr, body = doJSON(t, m, "GET", "/reports", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("reports = %d", rr.Code)
	}
	dates, _ := body["dates"].([]any)
	if len(dates) != 1 || dates[0] != "2014-03-01" {
		t.Fatalf("dates = %v", body["dates"])
	}

	// A training day has no SOC report.
	rr, _ = doJSON(t, m, "GET", "/report/2014-03-01", "")
	if rr.Code != http.StatusNotFound {
		t.Fatalf("training-day report = %d, want 404", rr.Code)
	}
	rr, _ = doJSON(t, m, "GET", "/report/not-a-date", "")
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("bad date = %d, want 400", rr.Code)
	}

	rr, body = doJSON(t, m, "GET", "/stats", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("stats = %d", rr.Code)
	}
	if body["daysDone"] != float64(1) || body["totalRecords"] != float64(40) {
		t.Fatalf("stats body = %v", body)
	}

	// Checkpoint endpoint requires the flag.
	rr, _ = doJSON(t, m, "POST", "/checkpoint", "")
	if rr.Code != http.StatusPreconditionFailed {
		t.Fatalf("checkpoint without path = %d, want 412", rr.Code)
	}
}

func TestHTTPBadPayloads(t *testing.T) {
	srv, _ := testServer(t, "")
	m := srv.mux()
	rr, _ := doJSON(t, m, "POST", "/day", `{"date":"01/02/2014"}`)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("bad day = %d, want 400", rr.Code)
	}
	rr, _ = doJSON(t, m, "POST", "/day", `{"date":"2014-03-01","leases":{"nope":"h"}}`)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("bad lease = %d, want 400", rr.Code)
	}
	rr, _ = doJSON(t, m, "POST", "/day", `{"date":"2014-03-01"}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("day = %d", rr.Code)
	}
	rr, _ = doJSON(t, m, "POST", "/ingest", "not\ta\tvalid\trecord\n")
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("malformed TSV = %d, want 400", rr.Code)
	}
}

func TestHTTPCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reprod.ckpt")
	srv, eng := testServer(t, path)
	m := srv.mux()
	day := time.Date(2014, 3, 2, 0, 0, 0, 0, time.UTC)

	doJSON(t, m, "POST", "/day", `{"date":"2014-03-02"}`)
	rr, _ := doJSON(t, m, "POST", "/ingest", proxyTSV(t, testRecords(day, 25)))
	if rr.Code != http.StatusOK {
		t.Fatalf("ingest = %d", rr.Code)
	}
	rr, _ = doJSON(t, m, "POST", "/checkpoint", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("checkpoint = %d", rr.Code)
	}
	// The open day and its buffer survive the checkpoint (peek, not cut).
	rr, _ = doJSON(t, m, "POST", "/flush", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("flush = %d", rr.Code)
	}
	rep, ok := eng.DayReport("2014-03-02")
	if !ok || rep.Stats.Records != 25 {
		t.Fatalf("post-checkpoint flush lost records: %v %+v", ok, rep.Stats)
	}
}
