package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/alert"
	"repro/internal/logs"
	"repro/internal/pipeline"
	"repro/internal/report"
	"repro/internal/stream"
	"repro/internal/whois"
)

func testServer(t *testing.T, ckpt string) (*server, *stream.Engine) {
	t.Helper()
	pipe := pipeline.NewEnterprise(pipeline.EnterpriseConfig{}, whois.NewRegistry(), nil, nil)
	e := stream.New(stream.Config{Shards: 2, TrainingDays: 1 << 30}, pipe)
	t.Cleanup(func() { e.Close() })
	return newServer(e, ckpt, 0, nil), e
}

func doJSON(t *testing.T, h http.Handler, method, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	out := make(map[string]any)
	if rr.Body.Len() > 0 {
		if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
			t.Fatalf("%s %s: bad JSON response %q: %v", method, path, rr.Body.String(), err)
		}
	}
	return rr, out
}

func proxyTSV(t *testing.T, recs []logs.ProxyRecord) string {
	t.Helper()
	var buf bytes.Buffer
	w := logs.NewProxyWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func testRecords(day time.Time, n int) []logs.ProxyRecord {
	recs := make([]logs.ProxyRecord, n)
	for i := range recs {
		recs[i] = logs.ProxyRecord{
			Time:   day.Add(time.Duration(i) * time.Minute),
			Host:   fmt.Sprintf("host-%d", i%7),
			SrcIP:  netip.MustParseAddr("10.0.0.1"),
			Domain: fmt.Sprintf("site-%d.example.org", i%5),
			Method: "GET", Status: 200,
		}
	}
	return recs
}

func TestHTTPLifecycle(t *testing.T) {
	srv, eng := testServer(t, "")
	m := srv.mux()
	day := time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC)

	rr, body := doJSON(t, m, "GET", "/healthz", "")
	if rr.Code != http.StatusOK || body["ok"] != true {
		t.Fatalf("healthz = %d %v", rr.Code, body)
	}

	// Ingesting before a day is open conflicts.
	rr, _ = doJSON(t, m, "POST", "/ingest", proxyTSV(t, testRecords(day, 3)))
	if rr.Code != http.StatusConflict {
		t.Fatalf("ingest without day = %d, want 409", rr.Code)
	}

	rr, _ = doJSON(t, m, "POST", "/day", `{"date":"2014-03-01","leases":{"10.0.0.1":"lease-host"}}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("day open = %d", rr.Code)
	}
	rr, body = doJSON(t, m, "POST", "/ingest", proxyTSV(t, testRecords(day, 40)))
	if rr.Code != http.StatusOK || body["ingested"] != float64(40) {
		t.Fatalf("ingest = %d %v", rr.Code, body)
	}
	rr, _ = doJSON(t, m, "POST", "/flush", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("flush = %d", rr.Code)
	}
	if got := eng.DaysDone(); got != 1 {
		t.Fatalf("DaysDone = %d", got)
	}

	rr, body = doJSON(t, m, "GET", "/reports", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("reports = %d", rr.Code)
	}
	dates, _ := body["dates"].([]any)
	if len(dates) != 1 || dates[0] != "2014-03-01" {
		t.Fatalf("dates = %v", body["dates"])
	}

	// A training day has no SOC report.
	rr, _ = doJSON(t, m, "GET", "/report/2014-03-01", "")
	if rr.Code != http.StatusNotFound {
		t.Fatalf("training-day report = %d, want 404", rr.Code)
	}
	rr, _ = doJSON(t, m, "GET", "/report/not-a-date", "")
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("bad date = %d, want 400", rr.Code)
	}

	rr, body = doJSON(t, m, "GET", "/stats", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("stats = %d", rr.Code)
	}
	if body["daysDone"] != float64(1) || body["totalRecords"] != float64(40) {
		t.Fatalf("stats body = %v", body)
	}

	// Checkpoint endpoint requires the flag.
	rr, _ = doJSON(t, m, "POST", "/checkpoint", "")
	if rr.Code != http.StatusPreconditionFailed {
		t.Fatalf("checkpoint without path = %d, want 412", rr.Code)
	}
}

func TestHTTPBadPayloads(t *testing.T) {
	srv, _ := testServer(t, "")
	m := srv.mux()
	rr, _ := doJSON(t, m, "POST", "/day", `{"date":"01/02/2014"}`)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("bad day = %d, want 400", rr.Code)
	}
	rr, _ = doJSON(t, m, "POST", "/day", `{"date":"2014-03-01","leases":{"nope":"h"}}`)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("bad lease = %d, want 400", rr.Code)
	}
	rr, _ = doJSON(t, m, "POST", "/day", `{"date":"2014-03-01"}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("day = %d", rr.Code)
	}
	rr, _ = doJSON(t, m, "POST", "/ingest", "not\ta\tvalid\trecord\n")
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("malformed TSV = %d, want 400", rr.Code)
	}
}

func TestHTTPCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reprod.ckpt")
	srv, eng := testServer(t, path)
	m := srv.mux()
	day := time.Date(2014, 3, 2, 0, 0, 0, 0, time.UTC)

	doJSON(t, m, "POST", "/day", `{"date":"2014-03-02"}`)
	rr, _ := doJSON(t, m, "POST", "/ingest", proxyTSV(t, testRecords(day, 25)))
	if rr.Code != http.StatusOK {
		t.Fatalf("ingest = %d", rr.Code)
	}
	rr, _ = doJSON(t, m, "POST", "/checkpoint", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("checkpoint = %d", rr.Code)
	}
	// The open day and its buffer survive the checkpoint (peek, not cut).
	rr, _ = doJSON(t, m, "POST", "/flush", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("flush = %d", rr.Code)
	}
	rep, ok := eng.DayReport("2014-03-02")
	if !ok || rep.Stats.Records != 25 {
		t.Fatalf("post-checkpoint flush lost records: %v %+v", ok, rep.Stats)
	}
}

// TestPeriodicCheckpoint: the -checkpoint-interval loop must publish a
// restorable checkpoint without any rollover or HTTP trigger, and stop
// when told to.
func TestPeriodicCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reprod.ckpt")
	srv, eng := testServer(t, path)
	day := time.Date(2014, 3, 4, 0, 0, 0, 0, time.UTC)
	if err := eng.BeginDay(day, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestBatch(testRecords(day, 30)); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		srv.runPeriodicCheckpoints(5*time.Millisecond, stop)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if fi, err := os.Stat(path); err == nil && fi.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic checkpoint never appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	<-loopDone

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	restored, err := stream.Restore(f, stream.Config{Shards: 1, TrainingDays: 1 << 30}, stream.RestoreDeps{Whois: whois.NewRegistry()})
	if err != nil {
		t.Fatalf("periodic checkpoint does not restore: %v", err)
	}
	defer restored.Close()
	if err := restored.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, ok := restored.DayReport("2014-03-04")
	if !ok || rep.Stats.Records != 30 {
		t.Fatalf("restored day: %v %+v, want 30 records", ok, rep.Stats)
	}
}

// TestHTTPIngestBodyTooLarge: one oversized POST must die with 413 and
// zero records ingested, not buffer without bound.
func TestHTTPIngestBodyTooLarge(t *testing.T) {
	pipe := pipeline.NewEnterprise(pipeline.EnterpriseConfig{}, whois.NewRegistry(), nil, nil)
	e := stream.New(stream.Config{Shards: 1, TrainingDays: 1 << 30}, pipe)
	t.Cleanup(func() { e.Close() })
	srv := newServer(e, "", 256, nil) // tiny cap for the test
	m := srv.mux()
	day := time.Date(2014, 3, 3, 0, 0, 0, 0, time.UTC)
	doJSON(t, m, "POST", "/day", `{"date":"2014-03-03"}`)

	big := proxyTSV(t, testRecords(day, 50)) // well over 256 bytes
	rr, _ := doJSON(t, m, "POST", "/ingest", big)
	if rr.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest = %d, want 413", rr.Code)
	}
	if got := e.Stats().TotalRecords; got != 0 {
		t.Fatalf("oversized ingest accepted %d records, want 0", got)
	}
	// A body under the cap still works.
	rr, body := doJSON(t, m, "POST", "/ingest", proxyTSV(t, testRecords(day, 1)))
	if rr.Code != http.StatusOK || body["ingested"] != float64(1) {
		t.Fatalf("small ingest = %d %v", rr.Code, body)
	}
}

// TestHTTPClosedEngineStatus: a closed engine means the daemon is shutting
// down — every mutating endpoint must answer 503, not 500.
func TestHTTPClosedEngineStatus(t *testing.T) {
	srv, eng := testServer(t, "")
	m := srv.mux()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ method, path, body string }{
		{"POST", "/flush", ""},
		{"POST", "/day", `{"date":"2014-03-01"}`},
		{"POST", "/ingest", proxyTSV(t, testRecords(time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC), 2))},
	} {
		rr, _ := doJSON(t, m, tc.method, tc.path, tc.body)
		if rr.Code != http.StatusServiceUnavailable {
			t.Errorf("%s %s on closed engine = %d, want 503", tc.method, tc.path, rr.Code)
		}
	}
}

// TestHTTPFlushConflictKeepsDay: a day-close that fails in the pipeline
// (calibration starvation) is a 409 — the close is non-destructive, so the
// day's records stay buffered as a failed close that /stats surfaces
// (closeFailed/closeError) and a later flush retries.
func TestHTTPFlushConflictKeepsDay(t *testing.T) {
	// TrainingDays 0 and a one-day calibration window: with no automated
	// traffic, the fit is starved and errors once the grace window (one
	// extra calibration window) is exhausted.
	pipe := pipeline.NewEnterprise(pipeline.EnterpriseConfig{CalibrationDays: 1}, whois.NewRegistry(), nil, nil)
	e := stream.New(stream.Config{Shards: 2}, pipe)
	t.Cleanup(func() { _ = e.Close() })
	srv := newServer(e, "", 0, nil)
	m := srv.mux()

	// One visit per (host, domain): nothing periodic, nothing automated.
	sparse := func(day time.Time, n int) []logs.ProxyRecord {
		recs := make([]logs.ProxyRecord, n)
		for i := range recs {
			recs[i] = logs.ProxyRecord{
				Time:   day.Add(time.Duration(i*37) * time.Minute),
				Host:   fmt.Sprintf("host-%d", i),
				SrcIP:  netip.MustParseAddr("10.0.0.1"),
				Domain: fmt.Sprintf("once-%d.example.org", i),
				Method: "GET", Status: 200,
			}
		}
		return recs
	}

	d1 := time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC)
	doJSON(t, m, "POST", "/day", `{"date":"2014-03-01"}`)
	doJSON(t, m, "POST", "/ingest", proxyTSV(t, sparse(d1, 8)))
	if rr, _ := doJSON(t, m, "POST", "/flush", ""); rr.Code != http.StatusOK {
		t.Fatalf("calibration-day flush = %d, want 200", rr.Code)
	}

	doJSON(t, m, "POST", "/day", `{"date":"2014-03-02"}`)
	doJSON(t, m, "POST", "/ingest", proxyTSV(t, sparse(d1.AddDate(0, 0, 1), 8)))
	rr, body := doJSON(t, m, "POST", "/flush", "")
	if rr.Code != http.StatusConflict {
		t.Fatalf("starved flush = %d %v, want 409", rr.Code, body)
	}
	// The day survived the failed close: /stats surfaces the failed state
	// instead of silently dropping the traffic.
	rr, body = doJSON(t, m, "GET", "/stats", "")
	if rr.Code != http.StatusOK || body["closeFailed"] != "2014-03-02" {
		t.Fatalf("after failed flush, stats = %d %v; want closeFailed=2014-03-02", rr.Code, body)
	}
	if msg, _ := body["closeError"].(string); !strings.Contains(msg, "calibrate") {
		t.Fatalf("closeError = %v; want the calibration cause", body["closeError"])
	}
	// A new day may open and buffer records meanwhile, but it cannot
	// complete past the failed one: the next flush retries 2014-03-02
	// first — still starved here, so still 409 — and the new day stays
	// open with its records. Days therefore never complete out of order.
	rr, _ = doJSON(t, m, "POST", "/day", `{"date":"2014-03-03"}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("day open behind a failed close = %d, want 200", rr.Code)
	}
	doJSON(t, m, "POST", "/ingest", proxyTSV(t, sparse(d1.AddDate(0, 0, 2), 8)))
	rr, body = doJSON(t, m, "POST", "/flush", "")
	if rr.Code != http.StatusConflict {
		t.Fatalf("retry flush = %d %v, want 409 (still starved)", rr.Code, body)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "2014-03-02") {
		t.Fatalf("retry error %q does not name the failed day", body["error"])
	}
	rr, body = doJSON(t, m, "GET", "/stats", "")
	if rr.Code != http.StatusOK || body["day"] != "2014-03-03" || body["dayRecords"] != float64(8) {
		t.Fatalf("after refused flush, stats = %d %v; want day 2014-03-03 intact", rr.Code, body)
	}
}

// TestHTTPReportDuringDayClose: a report requested for a day whose close
// still runs in the background is coming, not missing — 202 with a
// Retry-After hint, and 200 with the report once the close lands. The
// daemon keeps ingesting the new day the whole time.
func TestHTTPReportDuringDayClose(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	pipe := pipeline.NewEnterprise(pipeline.EnterpriseConfig{}, whois.NewRegistry(), nil, nil)
	e := stream.New(stream.Config{
		Shards: 2, TrainingDays: 1 << 30,
		CloseHook: func(string) { started <- struct{}{}; <-release },
	}, pipe)
	t.Cleanup(func() { _ = e.Close() })
	srv := newServer(e, "", 0, nil)
	m := srv.mux()

	day := time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC)
	doJSON(t, m, "POST", "/day", `{"date":"2014-03-01"}`)
	doJSON(t, m, "POST", "/ingest", proxyTSV(t, testRecords(day, 12)))
	// Roll over via /day: swap-and-continue, the close parks in the hook.
	if rr, _ := doJSON(t, m, "POST", "/day", `{"date":"2014-03-02"}`); rr.Code != http.StatusOK {
		t.Fatalf("next day open = %d, want 200", rr.Code)
	}
	<-started

	rr, body := doJSON(t, m, "GET", "/report/2014-03-01", "")
	if rr.Code != http.StatusAccepted {
		t.Fatalf("report during close = %d %v, want 202", rr.Code, body)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("202 without Retry-After")
	}
	// Ingestion into the new day is not blocked by the in-flight close.
	rr, body = doJSON(t, m, "POST", "/ingest", proxyTSV(t, testRecords(day.AddDate(0, 0, 1), 5)))
	if rr.Code != http.StatusOK || body["ingested"] != float64(5) {
		t.Fatalf("ingest during close = %d %v", rr.Code, body)
	}
	// /stats surfaces the pending close without waiting for it.
	rr, body = doJSON(t, m, "GET", "/stats", "")
	if rr.Code != http.StatusOK || body["closing"] != "2014-03-01" {
		t.Fatalf("stats during close = %d %v; want closing=2014-03-01", rr.Code, body)
	}

	close(release)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	// A training day still has no SOC report — but now it is a plain 404,
	// not a 202: the close is done.
	rr, _ = doJSON(t, m, "GET", "/report/2014-03-01", "")
	if rr.Code != http.StatusNotFound {
		t.Fatalf("report after close = %d, want 404 (training day)", rr.Code)
	}
}

// TestWorkersFlagReachesPipeline: the -workers knob must land in the
// day-close pipeline configuration, on both engine construction paths —
// fresh start and checkpoint restore (where the running host's flag
// overrides the checkpointed value).
func TestWorkersFlagReachesPipeline(t *testing.T) {
	opts := daemonOpts{seed: 1, workers: 3}
	e, err := newEngine(opts, stream.Config{Shards: 1, TrainingDays: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Pipeline().Config().Workers; got != 3 {
		t.Fatalf("fresh engine pipeline Workers = %d, want 3", got)
	}

	// Checkpoint with Workers=3, restore with -workers 2: the restore
	// host's flag wins (reports are worker-count independent).
	path := filepath.Join(t.TempDir(), "reprod.ckpt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	opts.checkpoint = path
	opts.workers = 2
	restored, err := newEngine(opts, stream.Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if got := restored.Pipeline().Config().Workers; got != 2 {
		t.Fatalf("restored engine pipeline Workers = %d, want the flag override 2", got)
	}
}

// TestShedThresholdFlagReachesEngine: the -shed-threshold knob must land
// in the engine configuration the listeners consult through Lagging, and
// leaving it unset must select the engine's 0.9 default.
func TestShedThresholdFlagReachesEngine(t *testing.T) {
	d := testDaemon(t, daemonOpts{shedThresh: 0.5})
	if got := d.eng.Config().ShedThreshold; got != 0.5 {
		t.Fatalf("engine ShedThreshold = %v, want the flag value 0.5", got)
	}
	d = testDaemon(t, daemonOpts{})
	if got := d.eng.Config().ShedThreshold; got != 0.9 {
		t.Fatalf("engine ShedThreshold with the flag unset = %v, want default 0.9", got)
	}
}

// TestRunFailsOnCorruptCheckpoint: daemon startup against an empty or
// corrupt checkpoint must stop with a descriptive error instead of
// starting fresh (which would overwrite the history on the next write).
func TestRunFailsOnCorruptCheckpoint(t *testing.T) {
	for name, content := range map[string]string{
		"empty":   "",
		"corrupt": "garbage, not a checkpoint\n",
	} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "reprod.ckpt")
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			err := run(daemonOpts{addr: "127.0.0.1:0", shards: 1, seed: 1, checkpoint: path})
			if err == nil {
				t.Fatal("run accepted a corrupt checkpoint")
			}
			if !strings.Contains(err.Error(), "restore checkpoint") {
				t.Fatalf("error %q does not point at the checkpoint", err)
			}
		})
	}
}

// capSink collects delivered alert events for the HTTP-layer tests.
type capSink struct{ ch chan alert.Event }

func (s *capSink) Send(ev alert.Event) error { s.ch <- ev; return nil }

// wedgedSink never returns from Send — the dead-sink case the ingest
// benchmarks guard against.
type wedgedSink struct{ block chan struct{} }

func (s *wedgedSink) Send(alert.Event) error { <-s.block; return nil }

func sampleDaily(date string) report.Daily {
	return report.Daily{
		Date: date,
		Domains: []report.Domain{{
			Domain: "c2.example.org", Reason: "c&c", Score: 0.9,
			BeaconPeriodSeconds: 300, Hosts: []string{"host-1"},
		}},
	}
}

// TestHTTPPreview: GET /preview computes a fresh provisional report for the
// open day, 409s with no day open, and 503s on a shut-down daemon.
func TestHTTPPreview(t *testing.T) {
	srv, eng := testServer(t, "")
	m := srv.mux()
	day := time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC)

	rr, _ := doJSON(t, m, "GET", "/preview", "")
	if rr.Code != http.StatusConflict {
		t.Fatalf("preview without day = %d, want 409", rr.Code)
	}

	doJSON(t, m, "POST", "/day", `{"date":"2014-03-01"}`)
	doJSON(t, m, "POST", "/ingest", proxyTSV(t, testRecords(day, 40)))
	rr, body := doJSON(t, m, "GET", "/preview", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("preview = %d %v", rr.Code, body)
	}
	if body["date"] != "2014-03-01" || body["records"] != float64(40) {
		t.Fatalf("preview body = %v", body)
	}
	if body["calibrating"] != true { // train-only engine: models never fit
		t.Fatalf("preview of an untrained pipeline must be calibrating: %v", body)
	}
	// The preview is visible in /stats without perturbing the day.
	rr, body = doJSON(t, m, "GET", "/stats", "")
	if rr.Code != http.StatusOK || body["dayRecords"] != float64(40) {
		t.Fatalf("stats after preview = %d %v", rr.Code, body)
	}

	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	rr, _ = doJSON(t, m, "GET", "/preview", "")
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("preview on closed engine = %d, want 503", rr.Code)
	}
}

// TestHTTPAlertStats: /alerts/stats reports "alerting off" plainly, and with
// a dispatcher wired in it (and /stats) carry the delivery counters.
func TestHTTPAlertStats(t *testing.T) {
	srv, _ := testServer(t, "")
	rr, body := doJSON(t, srv.mux(), "GET", "/alerts/stats", "")
	if rr.Code != http.StatusOK || body["enabled"] != false {
		t.Fatalf("alerts/stats without dispatcher = %d %v", rr.Code, body)
	}

	sink := &capSink{ch: make(chan alert.Event, 16)}
	d, err := alert.NewDispatcher(alert.Config{QueueSize: 16, SuppressMinutes: -1},
		map[string]alert.Sink{"cap": sink})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	pipe := pipeline.NewEnterprise(pipeline.EnterpriseConfig{}, whois.NewRegistry(), nil, nil)
	e := stream.New(stream.Config{Shards: 1, TrainingDays: 1 << 30}, pipe)
	t.Cleanup(func() { e.Close() })
	asrv := newServer(e, "", 0, d)
	m := asrv.mux()

	asrv.publishDaily(sampleDaily("2014-03-01"), alert.KindConfirmed)
	ev := <-sink.ch
	if ev.Kind != alert.KindConfirmed || ev.Domain != "c2.example.org" || ev.Severity != alert.SevCritical {
		t.Fatalf("delivered event %+v", ev)
	}

	deadline := time.Now().Add(5 * time.Second)
	for d.Stats().Sent < 1 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	rr, body = doJSON(t, m, "GET", "/alerts/stats", "")
	if rr.Code != http.StatusOK || body["enabled"] != true ||
		body["published"] != float64(1) || body["sent"] != float64(1) {
		t.Fatalf("alerts/stats = %d %v", rr.Code, body)
	}
	sinks, _ := body["sinks"].([]any)
	if len(sinks) != 1 {
		t.Fatalf("sinks = %v", body["sinks"])
	}
	rr, body = doJSON(t, m, "GET", "/stats", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("stats = %d", rr.Code)
	}
	if alerts, _ := body["alerts"].(map[string]any); alerts == nil || alerts["sent"] != float64(1) {
		t.Fatalf("stats alerts section = %v", body["alerts"])
	}
}

// TestPreviewLoopStopsOnEngineClose: the -preview-interval loop must notice
// engine shutdown through the preview error and exit rather than tick
// forever — its exit proves the loop was live (only a tick after Close can
// observe ErrClosed).
func TestPreviewLoopStopsOnEngineClose(t *testing.T) {
	srv, eng := testServer(t, "")
	day := time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC)
	if err := eng.BeginDay(day, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestBatch(testRecords(day, 20)); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.runPreviewLoop(time.Millisecond, nil)
	}()
	time.Sleep(5 * time.Millisecond) // let it preview the open day a few times
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("preview loop did not stop after engine close")
	}
}

// benchIngest drives the engine's batch-ingest path with an optional alert
// dispatcher wired into the server, publishing one (suppression-exempt)
// report per batch — the shape of a daemon alerting mid-ingest.
func benchIngest(b *testing.B, alerts *alert.Dispatcher) {
	pipe := pipeline.NewEnterprise(pipeline.EnterpriseConfig{}, whois.NewRegistry(), nil, nil)
	e := stream.New(stream.Config{Shards: 4, TrainingDays: 1 << 30}, pipe)
	defer e.Close()
	srv := newServer(e, "", 0, alerts)
	day := time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC)
	if err := e.BeginDay(day, nil); err != nil {
		b.Fatal(err)
	}
	recs := testRecords(day, 512)
	daily := sampleDaily("2014-03-01")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.IngestBatch(recs); err != nil {
			b.Fatal(err)
		}
		srv.publishDaily(daily, alert.KindProvisional)
	}
	b.SetBytes(512)
}

// BenchmarkIngestNoAlerts is the baseline for BenchmarkIngestBlockedSink:
// the two must not differ measurably — a permanently wedged sink with a
// full queue costs the ingest path a counter bump, never a stall.
func BenchmarkIngestNoAlerts(b *testing.B) {
	benchIngest(b, nil)
}

func BenchmarkIngestBlockedSink(b *testing.B) {
	sink := &wedgedSink{block: make(chan struct{})}
	d, err := alert.NewDispatcher(
		alert.Config{QueueSize: 2, SuppressMinutes: -1, CloseTimeoutMillis: 50},
		map[string]alert.Sink{"dead": sink})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		d.Close()
		close(sink.block)
	}()
	// Wedge the sink and fill its queue so every bench-loop publish is the
	// worst case: overflow against a dead sink.
	for i := 0; i < 4; i++ {
		d.Publish(alert.HealthEvent(alert.SevInfo, time.Now(), "prime"))
	}
	benchIngest(b, d)
}

// testDaemon builds and starts a full daemon on ephemeral ports, with the
// engine defaults the HTTP tests use. Tests that shut it down themselves
// are fine: shutdown is idempotent.
func testDaemon(t *testing.T, o daemonOpts) *daemon {
	t.Helper()
	if o.addr == "" {
		o.addr = "127.0.0.1:0"
	}
	if o.shards == 0 {
		o.shards = 2
	}
	if o.training == 0 {
		o.training = 1 << 30
	}
	o.seed = 1
	d, err := newDaemon(o)
	if err != nil {
		t.Fatal(err)
	}
	d.start()
	t.Cleanup(func() { _ = d.shutdown() })
	return d
}

// restoreCheckpointRecords restores a checkpoint file, flushes the open
// day, and returns that day's record count.
func restoreCheckpointRecords(t *testing.T, path, date string) int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	restored, err := stream.Restore(f, stream.Config{Shards: 2, TrainingDays: 1 << 30},
		stream.RestoreDeps{Whois: whois.NewRegistry()})
	if err != nil {
		t.Fatalf("shutdown checkpoint does not restore: %v", err)
	}
	defer restored.Close()
	if err := restored.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, ok := restored.DayReport(date)
	if !ok {
		t.Fatalf("restored checkpoint has no day %s", date)
	}
	return rep.Stats.Records
}

// TestShutdownPreservesAckedRecords is the regression test for the
// shutdown data-loss bug: the old path checkpointed first and then
// hard-closed the HTTP server, so a batch acknowledged with 200 between
// those two steps vanished. Now acknowledgment-before-checkpoint is the
// invariant: hammer /ingest from several connections, shut down mid-storm,
// and every record a 200 acknowledged must be in the final checkpoint.
func TestShutdownPreservesAckedRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reprod.ckpt")
	d := testDaemon(t, daemonOpts{checkpoint: path})
	base := "http://" + d.httpLn.Addr().String()

	resp, err := http.Post(base+"/day", "application/json", strings.NewReader(`{"date":"2014-03-01"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("day open = %d", resp.StatusCode)
	}

	day := time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC)
	const perBatch = 5
	body := proxyTSV(t, testRecords(day, perBatch))
	var acked atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				resp, err := http.Post(base+"/ingest", "text/tab-separated-values", strings.NewReader(body))
				if err != nil {
					return // server gone: shutdown finished closing the socket
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					return // 503 during shutdown, or hard refusal
				}
				acked.Add(perBatch)
			}
		}()
	}

	// Shut down only once the storm is actually landing acks, so the
	// shutdown races real in-flight requests.
	deadline := time.Now().Add(10 * time.Second)
	for acked.Load() < 3*perBatch {
		if time.Now().After(deadline) {
			t.Fatal("ingest hammer never got going")
		}
		time.Sleep(time.Millisecond)
	}
	if err := d.shutdown(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	got := restoreCheckpointRecords(t, path, "2014-03-01")
	if int64(got) < acked.Load() {
		t.Fatalf("shutdown lost acknowledged records: %d acked with 200, checkpoint has %d", acked.Load(), got)
	}
}

// writeReplayDay lays out one cmd/datagen-shaped day file pair for -replay.
func writeReplayDay(t *testing.T, dir string, day time.Time, n int) {
	t.Helper()
	date := day.Format("2006-01-02")
	f, err := os.Create(filepath.Join(dir, "proxy-"+date+".tsv"))
	if err != nil {
		t.Fatal(err)
	}
	w := logs.NewProxyWriter(f)
	for _, r := range testRecords(day, n) {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "leases-"+date+".json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownInterruptsReplayAndLoops is the regression test for the
// unstoppable-background-goroutines bug: the periodic checkpoint and
// preview loops used to get nil stop channels, and a paced replay had no
// stop at all — a SIGTERM during a -speed replay hung until the dataset
// ran out. Shutdown must interrupt a mid-sleep paced replay and join every
// loop, promptly, and still write a checkpoint holding the partial day.
func TestShutdownInterruptsReplayAndLoops(t *testing.T) {
	dir := t.TempDir()
	day := time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC)
	writeReplayDay(t, dir, day, 50)
	path := filepath.Join(t.TempDir(), "reprod.ckpt")
	// Speed 1 with minute-spaced records: the replayer paces with 10s
	// (MaxGap-capped) sleeps, so without the stop channel this test would
	// hang for minutes. The hour-interval loops prove join-on-stop, not
	// tick-coincidence.
	d := testDaemon(t, daemonOpts{
		checkpoint: path, ckptInterval: time.Hour, previewEvery: time.Hour,
		replay: dir, speed: 1,
	})

	// Wait for the replay to open the day and land its first record, so
	// shutdown interrupts a replay that is genuinely mid-pacing-sleep.
	deadline := time.Now().Add(10 * time.Second)
	for d.eng.Stats().TotalRecords == 0 {
		if time.Now().After(deadline) {
			t.Fatal("replay never started")
		}
		time.Sleep(time.Millisecond)
	}

	done := make(chan error, 1)
	go func() { done <- d.shutdown() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(9 * time.Second): // under one 10s pacing sleep
		t.Fatal("shutdown hung on the paced replay or a background loop")
	}
	select {
	case err := <-d.errc:
		t.Fatalf("stopped replay surfaced as a failure: %v", err)
	default:
	}
	if got := restoreCheckpointRecords(t, path, "2014-03-01"); got < 1 {
		t.Fatalf("checkpoint lost the partial replay day: %d records", got)
	}
}

// TestListenerWiredIntoDaemon covers the -listen-tcp wiring end to end:
// records framed over a raw TCP connection land in the engine, the
// listener counters surface in /stats next to the memory section, and the
// records survive shutdown into the checkpoint.
func TestListenerWiredIntoDaemon(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reprod.ckpt")
	d := testDaemon(t, daemonOpts{checkpoint: path, listenTCP: "127.0.0.1:0"})
	base := "http://" + d.httpLn.Addr().String()

	resp, err := http.Post(base+"/day", "application/json", strings.NewReader(`{"date":"2014-03-01"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	day := time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC)
	conn, err := net.Dial("tcp", d.inputs[0].Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(conn, proxyTSV(t, testRecords(day, 30))); err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}

	// The listener delivers asynchronously; poll /stats for the counters.
	var body map[string]any
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(base + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		body = map[string]any{}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if body["totalRecords"] == float64(30) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("TCP-ingested records never reached the engine: stats %v", body)
		}
		time.Sleep(2 * time.Millisecond)
	}
	ins, _ := body["inputs"].([]any)
	if len(ins) != 1 {
		t.Fatalf("stats inputs = %v, want one listener", body["inputs"])
	}
	in, _ := ins[0].(map[string]any)
	if in["name"] != "tcp" || in["records"] != float64(30) || in["connsAccepted"] != float64(1) {
		t.Fatalf("listener stats = %v", in)
	}
	if mem, _ := body["memory"].(map[string]any); mem == nil || mem["heapSysBytes"] == float64(0) {
		t.Fatalf("stats memory section = %v", body["memory"])
	}

	if err := d.shutdown(); err != nil {
		t.Fatal(err)
	}
	if got := restoreCheckpointRecords(t, path, "2014-03-01"); got != 30 {
		t.Fatalf("checkpoint after TCP ingest has %d records, want 30", got)
	}
}
