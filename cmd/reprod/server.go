package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/netip"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/alert"
	"repro/internal/inputs"
	"repro/internal/logs"
	"repro/internal/report"
	"repro/internal/stream"
)

// defaultMaxIngestBytes caps one /ingest body (32 MiB ≈ 200k TSV records):
// big enough for any sane batch, small enough that a runaway POST cannot
// buffer the daemon out of memory.
const defaultMaxIngestBytes = 32 << 20

// server wraps the engine with the daemon's HTTP API. Handlers are thin:
// all synchronization lives in the engine, except the checkpoint file
// write, which the server serializes itself.
type server struct {
	eng       *stream.Engine
	ckptPath  string
	maxIngest int64
	ckptMu    sync.Mutex
	// alerts is the outbound alert dispatcher (nil: alerting off). Publish
	// never blocks, so handlers and engine callbacks call it freely.
	alerts *alert.Dispatcher
	// inputs are the live TCP/syslog/netflow listeners, surfaced in /stats.
	// Set once before the HTTP server starts; read-only afterwards.
	inputs []*inputs.Listener
}

func newServer(e *stream.Engine, ckptPath string, maxIngest int64, alerts *alert.Dispatcher) *server {
	if maxIngest <= 0 {
		maxIngest = defaultMaxIngestBytes
	}
	return &server{eng: e, ckptPath: ckptPath, maxIngest: maxIngest, alerts: alerts}
}

// publishDaily fans a day's SOC report out as alert events (no-op with
// alerting off).
func (s *server) publishDaily(daily report.Daily, kind alert.EventKind) {
	if s.alerts == nil {
		return
	}
	for _, ev := range alert.EventsFromDaily(daily, kind, time.Now()) {
		s.alerts.Publish(ev)
	}
}

// bodyLimitTripped reports whether a MaxBytesReader has hit its cap: once
// tripped, every further read returns *http.MaxBytesError. (The batch is
// being rejected either way, so consuming one byte is harmless.)
func bodyLimitTripped(body io.Reader) bool {
	var one [1]byte
	_, err := body.Read(one[:])
	return errors.As(err, new(*http.MaxBytesError))
}

// engineErrStatus maps engine errors onto the API's status contract: a
// closed engine means the daemon is shutting down (503, retryable
// elsewhere); anything else — no open day, or a rollover failure such as
// calibration starvation that left the day's buffer intact — is a conflict
// the client can resolve and retry (409).
func engineErrStatus(err error) int {
	if errors.Is(err, stream.ErrClosed) {
		return http.StatusServiceUnavailable
	}
	return http.StatusConflict
}

func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("GET /healthz", s.handleHealthz)
	m.HandleFunc("GET /stats", s.handleStats)
	m.HandleFunc("GET /preview", s.handlePreview)
	m.HandleFunc("GET /alerts/stats", s.handleAlertStats)
	m.HandleFunc("GET /reports", s.handleReports)
	m.HandleFunc("GET /report/{date}", s.handleReport)
	m.HandleFunc("POST /day", s.handleDay)
	m.HandleFunc("POST /ingest", s.handleIngest)
	m.HandleFunc("POST /flush", s.handleFlush)
	m.HandleFunc("POST /checkpoint", s.handleCheckpoint)
	return m
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "daysDone": s.eng.DaysDone()})
}

// memStats is the /stats memory section: enough to watch the daemon's
// footprint during a soak without shelling into the host.
type memStats struct {
	HeapAllocBytes uint64 `json:"heapAllocBytes"`
	HeapSysBytes   uint64 `json:"heapSysBytes"`
	NumGC          uint32 `json:"numGC"`
}

func readMemStats() memStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return memStats{HeapAllocBytes: ms.HeapAlloc, HeapSysBytes: ms.HeapSys, NumGC: ms.NumGC}
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st, live := s.eng.Snapshot(25)
	var alerts *alert.Stats
	if s.alerts != nil {
		a := s.alerts.Stats()
		alerts = &a
	}
	var inStats []inputs.Stats
	for _, l := range s.inputs {
		inStats = append(inStats, l.Stats())
	}
	writeJSON(w, http.StatusOK, struct {
		stream.Stats
		LiveAutomated []stream.LivePair `json:"liveAutomated,omitempty"`
		Alerts        *alert.Stats      `json:"alerts,omitempty"`
		Inputs        []inputs.Stats    `json:"inputs,omitempty"`
		Memory        memStats          `json:"memory"`
	}{st, live, alerts, inStats, readMemStats()})
}

// handlePreview computes a fresh mid-day detection preview: the report a
// rollover at this instant would publish, without closing anything. The
// call freezes ingestion only while the shard builders are cloned.
func (s *server) handlePreview(w http.ResponseWriter, _ *http.Request) {
	pr, err := s.eng.Preview(0)
	if err != nil {
		writeErr(w, engineErrStatus(err), "preview: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, pr)
}

func (s *server) handleAlertStats(w http.ResponseWriter, _ *http.Request) {
	if s.alerts == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Enabled bool `json:"enabled"`
		alert.Stats
	}{true, s.alerts.Stats()})
}

func (s *server) handleReports(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"dates": s.eng.Dates()})
}

func (s *server) handleReport(w http.ResponseWriter, r *http.Request) {
	date := r.PathValue("date")
	if _, err := time.Parse("2006-01-02", date); err != nil {
		writeErr(w, http.StatusBadRequest, "bad date %q: want YYYY-MM-DD", date)
		return
	}
	// TryReport decides under one engine-lock acquisition, so a rollover
	// racing this request cannot slip between a pending-check and the
	// read. A day whose close still runs in the background is coming, not
	// missing: answer 202 with a retry hint instead of blocking the
	// request on the pipeline (engine Report would wait) or lying with 404.
	daily, ok, pending := s.eng.TryReport(date)
	if pending {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusAccepted, map[string]string{
			"status": "day-close in flight", "date": date,
		})
		return
	}
	if !ok {
		writeErr(w, http.StatusNotFound, "no report for %s (training day, unknown day, or day still open)", date)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = daily.WriteJSON(w)
}

// dayRequest opens an ingestion day; the lease map is the same shape the
// on-disk leases-YYYY-MM-DD.json files carry.
type dayRequest struct {
	Date   string            `json:"date"`
	Leases map[string]string `json:"leases,omitempty"`
}

func (s *server) handleDay(w http.ResponseWriter, r *http.Request) {
	var req dayRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	day, err := time.Parse("2006-01-02", req.Date)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad date %q: want YYYY-MM-DD", req.Date)
		return
	}
	var leases map[netip.Addr]string
	if len(req.Leases) > 0 {
		leases = make(map[netip.Addr]string, len(req.Leases))
		for ip, host := range req.Leases {
			addr, err := netip.ParseAddr(ip)
			if err != nil {
				writeErr(w, http.StatusBadRequest, "bad lease address %q", ip)
				return
			}
			leases[addr] = host
		}
	}
	if err := s.eng.BeginDay(day, leases); err != nil {
		writeErr(w, engineErrStatus(err), "begin day: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"day": req.Date})
}

func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	// Backpressure is decided per batch, before any body is consumed, so
	// a lagging engine sheds whole requests and the sender's retry
	// replays a clean batch boundary.
	if s.eng.Lagging() {
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, "shards lagging, retry later")
		return
	}
	// Cap the body before consuming any of it: an oversized POST must die
	// with 413, not buffer the daemon toward OOM.
	body := http.MaxBytesReader(w, r.Body, s.maxIngest)
	// Size the record buffer from Content-Length (clamped to the body cap,
	// since a hostile length header must not drive allocation past it).
	// Chunked requests advertise no length and start from the pooled
	// buffer's existing capacity.
	var sizeHint int64
	if n := r.ContentLength; n > 0 {
		sizeHint = min(n, s.maxIngest)
	}
	// Parse the whole batch before ingesting any of it: a malformed line
	// must reject the request with zero records accepted, or the sender's
	// corrected retry would double-ingest the valid prefix. The decoder and
	// record buffer come from pools, so steady-state ingest reuses one warm
	// interning table and one buffer across requests.
	dec := logs.GetProxyDecoder()
	recs, err := logs.ReadProxyBatch(body, dec, logs.GetProxyBuf(int(sizeHint/approxProxyLineBytes)))
	logs.PutProxyDecoder(dec)
	if err != nil {
		logs.PutProxyBuf(recs)
		// A tripped limit usually surfaces as a parse error on the line the
		// cap truncated, so ask the reader, not just the error chain.
		if errors.As(err, new(*http.MaxBytesError)) || bodyLimitTripped(body) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				"rejected whole batch: body exceeds %d bytes; split the batch", s.maxIngest)
			return
		}
		writeErr(w, http.StatusBadRequest, "rejected whole batch: %v", err)
		return
	}
	// One engine call ingests the parsed batch atomically — the lock is
	// taken once, the records land contiguously, and an error (day closed
	// under us, daemon shutting down) means none of them were accepted, so
	// the sender's retry replays a clean batch boundary. IngestBatch
	// reduces the records synchronously, so the buffer recycles as soon as
	// it returns.
	n := len(recs)
	ingestErr := s.eng.IngestBatch(recs)
	logs.PutProxyBuf(recs)
	if ingestErr != nil {
		writeErr(w, engineErrStatus(ingestErr), "rejected whole batch: %v", ingestErr)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"ingested": n})
}

// approxProxyLineBytes converts a byte-size hint into a record-count
// preallocation for ingest buffers; it matches the batch loader's estimate.
const approxProxyLineBytes = 96

func (s *server) handleFlush(w http.ResponseWriter, _ *http.Request) {
	if err := s.eng.Flush(); err != nil {
		// The engine's rollover is non-destructive: on failure the day and
		// its buffered records stay open, so 409 tells the client the flush
		// can be retried once the cause (typically calibration starvation)
		// is addressed.
		writeErr(w, engineErrStatus(err), "flush: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"daysDone": s.eng.DaysDone()})
}

func (s *server) handleCheckpoint(w http.ResponseWriter, _ *http.Request) {
	if s.ckptPath == "" {
		writeErr(w, http.StatusPreconditionFailed, "daemon started without -checkpoint")
		return
	}
	if err := s.writeCheckpoint(); err != nil {
		writeErr(w, http.StatusInternalServerError, "checkpoint: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"checkpoint": s.ckptPath})
}

// writeCheckpoint atomically replaces the checkpoint file. Serialized:
// rollover-triggered, HTTP-triggered and shutdown checkpoints may race.
//
//lint:ignore locksafety ckptMu exists to serialize exactly this file I/O; it guards no ingest-path state and is never taken under an engine lock
func (s *server) writeCheckpoint() error {
	if s.ckptPath == "" {
		return nil
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	tmp := s.ckptPath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.eng.Checkpoint(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	// fsync before rename: without it a crash shortly after the rename can
	// publish a checkpoint whose bytes never left the page cache, and the
	// next start would trust a truncated file over the previous good one.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, s.ckptPath); err != nil {
		os.Remove(tmp)
		return err
	}
	// fsync the containing directory too: the rename itself is metadata,
	// and without this a crash can surface the new name pointing at a
	// zero-length (or missing) file — the startup refusal path would then
	// reject a checkpoint that was never durably published. Directory
	// fsync is advisory on some platforms; failure to open or sync is not
	// fatal once the data file itself is synced.
	if dir, err := os.Open(filepath.Dir(s.ckptPath)); err == nil {
		_ = dir.Sync()
		_ = dir.Close()
	}
	return nil
}

// runPeriodicCheckpoints writes the checkpoint every interval until stop
// closes — the -checkpoint-interval auto-checkpoint loop, giving a daemon
// that sees long gaps between rollovers a bounded restart window. Write
// failures are logged and retried at the next tick; the engine shutting
// down ends the loop.
// runPreviewLoop runs a detection preview every interval until stop closes
// (or the engine shuts down), publishing the provisional findings as alert
// events. A preview that fails for any reason other than "no day open"
// raises a health alert — the SOC should know its early-warning feed went
// dark. The loop drives /stats freshness too (lastPreviewMillis,
// previewCandidates); GET /preview remains on-demand and independent.
func (s *server) runPreviewLoop(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			pr, err := s.eng.Preview(0)
			switch {
			case err == nil:
				if len(pr.Report.Domains) > 0 {
					log.Printf("preview %s: %d records in, %d provisional suspicious domains",
						pr.Date, pr.Records, len(pr.Report.Domains))
				}
				s.publishDaily(pr.Report, alert.KindProvisional)
			case errors.Is(err, stream.ErrClosed):
				return
			case errors.Is(err, stream.ErrNoDay):
				// Nothing to preview between days; not a failure.
			default:
				log.Printf("preview: %v", err)
				if s.alerts != nil {
					s.alerts.Publish(alert.HealthEvent(alert.SevWarning, time.Now(),
						fmt.Sprintf("detection preview failed: %v", err)))
				}
			}
		}
	}
}

func (s *server) runPeriodicCheckpoints(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if err := s.writeCheckpoint(); err != nil {
				if errors.Is(err, stream.ErrClosed) {
					return
				}
				log.Printf("periodic checkpoint: %v", err)
			}
		}
	}
}
