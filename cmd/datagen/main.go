// Command datagen writes the synthetic datasets to disk as TSV files —
// one file per day plus a ground-truth manifest — so the pipelines can be
// exercised against on-disk logs the way the paper's system consumed its
// daily batches.
//
// Usage:
//
//	datagen -kind lanl|enterprise -out DIR [-seed N] [-days N]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/gen"
	"repro/internal/logs"
)

func main() {
	kind := flag.String("kind", "lanl", "dataset kind: lanl or enterprise")
	out := flag.String("out", "dataset", "output directory")
	seed := flag.Int64("seed", 1, "dataset seed")
	days := flag.Int("days", 0, "limit the number of days (0 = all)")
	flag.Parse()
	if err := run(*kind, *out, *seed, *days); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(kind, out string, seed int64, days int) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	switch kind {
	case "lanl":
		return writeLANL(out, seed, days)
	case "enterprise":
		return writeEnterprise(out, seed, days)
	case "netflow":
		return writeNetflow(out, seed, days)
	default:
		return fmt.Errorf("unknown dataset kind %q", kind)
	}
}

func writeLANL(out string, seed int64, days int) error {
	g := gen.NewLANL(gen.LANLConfig{Seed: seed})
	n := g.NumDays()
	if days > 0 && days < n {
		n = days
	}
	total := 0
	for day := 0; day < n; day++ {
		name := filepath.Join(out, fmt.Sprintf("dns-%s.tsv", g.DayTime(day).Format("2006-01-02")))
		recs := g.Day(day)
		total += len(recs)
		if err := writeDNSFile(name, recs); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d days, %d DNS records to %s\n", n, total, out)
	return writeTruth(filepath.Join(out, "ground_truth.json"), g.Truth)
}

func writeEnterprise(out string, seed int64, days int) error {
	g := gen.NewEnterprise(gen.EnterpriseConfig{Seed: seed})
	n := g.NumDays()
	if days > 0 && days < n {
		n = days
	}
	total := 0
	for day := 0; day < n; day++ {
		date := g.DayTime(day).Format("2006-01-02")
		recs := g.Day(day)
		total += len(recs)
		if err := writeProxyFile(filepath.Join(out, "proxy-"+date+".tsv"), recs); err != nil {
			return err
		}
		// The DHCP/VPN lease map the normalizer needs.
		leases := make(map[string]string)
		for ip, host := range g.DHCPMap(day) {
			leases[ip.String()] = host
		}
		if err := writeJSON(filepath.Join(out, "leases-"+date+".json"), leases); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d days, %d proxy records to %s\n", n, total, out)
	return writeTruth(filepath.Join(out, "ground_truth.json"), g.Truth)
}

func writeNetflow(out string, seed int64, days int) error {
	g := gen.NewEnterprise(gen.EnterpriseConfig{Seed: seed})
	n := g.NumDays()
	if days > 0 && days < n {
		n = days
	}
	total := 0
	for day := 0; day < n; day++ {
		date := g.DayTime(day).Format("2006-01-02")
		flows := g.FlowDay(day)
		total += len(flows)
		if err := writeFlowFile(filepath.Join(out, "flows-"+date+".tsv"), flows); err != nil {
			return err
		}
		leases := make(map[string]string)
		for ip, host := range g.DHCPMap(day) {
			leases[ip.String()] = host
		}
		if err := writeJSON(filepath.Join(out, "leases-"+date+".json"), leases); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d days, %d flow records to %s\n", n, total, out)
	return writeTruth(filepath.Join(out, "ground_truth.json"), g.Truth)
}

func writeFlowFile(name string, recs []logs.FlowRecord) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	defer f.Close()
	w := logs.NewFlowWriter(f)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	return w.Flush()
}

func writeDNSFile(name string, recs []logs.DNSRecord) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	defer f.Close()
	w := logs.NewDNSWriter(f)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	return w.Flush()
}

func writeProxyFile(name string, recs []logs.ProxyRecord) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	defer f.Close()
	w := logs.NewProxyWriter(f)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	return w.Flush()
}

func writeTruth(name string, truth *gen.GroundTruth) error {
	type campaignOut struct {
		ID       string   `json:"id"`
		Case     int      `json:"case,omitempty"`
		Day      string   `json:"day"`
		Domains  []string `json:"domains"`
		Hosts    []string `json:"hosts"`
		Hints    []string `json:"hintHosts,omitempty"`
		CCDomain string   `json:"ccDomain"`
		PeriodS  float64  `json:"ccPeriodSeconds"`
	}
	var out []campaignOut
	for _, c := range truth.Campaigns {
		out = append(out, campaignOut{
			ID: c.ID, Case: c.Case, Day: c.Day.Format("2006-01-02"),
			Domains: c.Domains(), Hosts: c.Hosts, Hints: c.HintHosts,
			CCDomain: c.CCDomain, PeriodS: c.CCPeriod.Seconds(),
		})
	}
	return writeJSON(name, out)
}

func writeJSON(name string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(name, data, 0o644)
}
