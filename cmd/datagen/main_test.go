package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/logs"
)

func TestWriteLANLRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if err := run("lanl", dir, 3, 2); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "dns-*.tsv"))
	if err != nil || len(files) != 2 {
		t.Fatalf("dns files = %v (%v)", files, err)
	}
	f, err := os.Open(files[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n := 0
	if err := logs.ReadDNS(f, func(logs.DNSRecord) error {
		n++
		return nil
	}); err != nil {
		t.Fatalf("parse back: %v", err)
	}
	if n == 0 {
		t.Error("no records written")
	}
	assertTruth(t, dir)
}

func TestWriteEnterpriseRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if err := run("enterprise", dir, 3, 1); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "proxy-*.tsv"))
	if len(files) != 1 {
		t.Fatalf("proxy files = %v", files)
	}
	f, err := os.Open(files[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n := 0
	if err := logs.ReadProxy(f, func(logs.ProxyRecord) error {
		n++
		return nil
	}); err != nil {
		t.Fatalf("parse back: %v", err)
	}
	if n == 0 {
		t.Error("no records")
	}
	leases, _ := filepath.Glob(filepath.Join(dir, "leases-*.json"))
	if len(leases) != 1 {
		t.Fatalf("lease files = %v", leases)
	}
	assertTruth(t, dir)
}

func TestWriteNetflowRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if err := run("netflow", dir, 3, 1); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "flows-*.tsv"))
	if len(files) != 1 {
		t.Fatalf("flow files = %v", files)
	}
	f, err := os.Open(files[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n := 0
	if err := logs.ReadFlows(f, func(logs.FlowRecord) error {
		n++
		return nil
	}); err != nil {
		t.Fatalf("parse back: %v", err)
	}
	if n == 0 {
		t.Error("no records")
	}
}

func TestUnknownKind(t *testing.T) {
	if err := run("bogus", t.TempDir(), 1, 1); err == nil {
		t.Error("expected error for unknown kind")
	}
}

func assertTruth(t *testing.T, dir string) {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "ground_truth.json"))
	if err != nil {
		t.Fatal(err)
	}
	var campaigns []map[string]any
	if err := json.Unmarshal(data, &campaigns); err != nil {
		t.Fatalf("ground truth not valid JSON: %v", err)
	}
	if len(campaigns) == 0 {
		t.Error("no campaigns in ground truth")
	}
}
