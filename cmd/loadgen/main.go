// Command loadgen drives heavy synthetic proxy traffic at a reprod daemon
// and reports whether the daemon kept up: achieved rate vs target, ingest
// latency percentiles, daemon-side drops, and the daemon's memory ceiling.
//
// Usage:
//
//	loadgen [-mode tcp|http] [-target ADDR] [-admin URL] [-rate N]
//	        [-duration D] [-batch N] [-framing newline|octet]
//	        [-seed N] [-hosts N] [-domains N] [-cc N] [-cc-period D]
//	        [-day YYYY-MM-DD] [-open-day] [-report FILE]
//	loadgen -selftest [-rate N] [-duration D] ...
//
// In tcp mode, -target is a live listener address (the daemon's
// -listen-tcp or -listen-syslog; pick -framing to match: newline for
// -listen-tcp, syslog — octet frames carrying an RFC 5424 header — for
// -listen-syslog; bare octet is raw octet framing with no header, for
// listeners configured without one). In http mode, -target is the
// daemon's base URL and batches go to POST /ingest. With -admin set, the
// driver polls GET /stats for the daemon's heap ceiling and listener drop
// counters, and -open-day opens the model's virtual day over POST /day
// before driving.
//
// -selftest runs the whole loop in-process — model, paced TCP sender,
// listener, engine — at a deliberately sustainable rate, and exits
// non-zero unless delivery was lossless and every counter agrees. CI runs
// it as the soak smoke.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/inputs"
	"repro/internal/loadgen"
	"repro/internal/pipeline"
	"repro/internal/stream"
	"repro/internal/whois"
)

type options struct {
	mode     string
	target   string
	admin    string
	rate     float64
	duration time.Duration
	batch    int
	framing  string
	seed     int64
	hosts    int
	domains  int
	cc       int
	ccPeriod time.Duration
	day      string
	openDay  bool
	report   string
	selftest bool
}

func main() {
	var o options
	flag.StringVar(&o.mode, "mode", "tcp", "transport: tcp (framed listener) or http (POST /ingest)")
	flag.StringVar(&o.target, "target", "", "tcp: listener host:port; http: daemon base URL")
	flag.StringVar(&o.admin, "admin", "", "daemon base URL for /stats polling and -open-day (optional)")
	flag.Float64Var(&o.rate, "rate", 10000, "target ingest rate, records/second")
	flag.DurationVar(&o.duration, "duration", time.Minute, "how long to sustain the rate")
	flag.IntVar(&o.batch, "batch", 256, "records per send")
	flag.StringVar(&o.framing, "framing", "newline", "tcp framing: newline, octet, or syslog (octet + RFC 5424 header)")
	flag.Int64Var(&o.seed, "seed", 1, "traffic model seed")
	flag.IntVar(&o.hosts, "hosts", 0, "browsing host pool (0 = default)")
	flag.IntVar(&o.domains, "domains", 0, "benign domain pool (0 = default)")
	flag.IntVar(&o.cc, "cc", 0, "beaconing C&C pairs (0 = default)")
	flag.DurationVar(&o.ccPeriod, "cc-period", 0, "beacon period in virtual time (0 = default)")
	flag.StringVar(&o.day, "day", "", "virtual day YYYY-MM-DD (default 2014-03-01)")
	flag.BoolVar(&o.openDay, "open-day", false, "open the virtual day via the admin API before driving (requires -admin)")
	flag.StringVar(&o.report, "report", "", "write the result JSON here instead of stdout")
	flag.BoolVar(&o.selftest, "selftest", false, "run an in-process lossless soak and exit non-zero on any loss or mismatch")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func (o options) modelConfig() (loadgen.ModelConfig, error) {
	cfg := loadgen.ModelConfig{
		Seed: o.seed, Hosts: o.hosts, Domains: o.domains,
		CCPairs: o.cc, CCPeriod: o.ccPeriod,
	}
	if o.day != "" {
		day, err := time.Parse("2006-01-02", o.day)
		if err != nil {
			return cfg, fmt.Errorf("bad -day %q: want YYYY-MM-DD", o.day)
		}
		cfg.Day = day
	}
	return cfg, nil
}

func (o options) parseFraming() (inputs.Framing, bool, error) {
	switch o.framing {
	case "newline":
		return inputs.FramingNewline, false, nil
	case "octet":
		return inputs.FramingOctet, false, nil
	case "syslog":
		return inputs.FramingOctet, true, nil
	}
	return 0, false, fmt.Errorf("bad -framing %q: want newline, octet, or syslog", o.framing)
}

func run(o options) error {
	mcfg, err := o.modelConfig()
	if err != nil {
		return err
	}
	framing, syslogHeader, err := o.parseFraming()
	if err != nil {
		return err
	}
	if o.selftest {
		return selftest(o, mcfg, framing, syslogHeader)
	}
	if o.target == "" {
		return fmt.Errorf("-target is required (or use -selftest)")
	}
	m := loadgen.NewModel(mcfg)
	if o.openDay {
		if o.admin == "" {
			return fmt.Errorf("-open-day requires -admin")
		}
		if err := openDay(o.admin, m.Day()); err != nil {
			return err
		}
	}
	res, runErr := loadgen.Run(loadgen.DriverConfig{
		Mode: o.mode, Addr: o.target, AdminURL: o.admin,
		Rate: o.rate, Duration: o.duration, Batch: o.batch,
		Framing: framing, SyslogHeader: syslogHeader,
	}, m)
	if err := writeReport(o.report, res); err != nil {
		return err
	}
	return runErr
}

func openDay(admin string, day time.Time) error {
	body := fmt.Sprintf(`{"date":%q}`, day.Format("2006-01-02"))
	resp, err := http.Post(admin+"/day", "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("open day: daemon answered %d", resp.StatusCode)
	}
	return nil
}

func writeReport(path string, res loadgen.Result) error {
	out := os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// selftest wires the full loop in one process: model → paced TCP sender →
// framed listener → streaming engine. At a sustainable rate nothing may be
// shed, rejected, or malformed, and the sender's, listener's and engine's
// counts must agree exactly. This is the CI soak smoke, so violations are
// reported all at once rather than first-failure.
func selftest(o options, mcfg loadgen.ModelConfig, framing inputs.Framing, syslogHeader bool) error {
	pipe := pipeline.NewEnterprise(pipeline.EnterpriseConfig{}, whois.NewRegistry(), nil, nil)
	eng := stream.New(stream.Config{Shards: 2, TrainingDays: 1 << 30}, pipe)
	defer eng.Close()
	l, err := inputs.Listen(eng, "127.0.0.1:0", inputs.Config{
		Name: "selftest", Framing: framing, SyslogHeader: syslogHeader,
	})
	if err != nil {
		return err
	}
	defer l.Close()
	m := loadgen.NewModel(mcfg)
	if err := eng.BeginDay(m.Day(), nil); err != nil {
		return err
	}

	res, runErr := loadgen.Run(loadgen.DriverConfig{
		Mode: "tcp", Addr: l.Addr().String(),
		Framing: framing, SyslogHeader: syslogHeader,
		Rate: o.rate, Duration: o.duration, Batch: o.batch,
	}, m)
	if runErr != nil {
		return runErr
	}
	// The listener delivers the tail asynchronously after the sender's
	// connection closes; wait for the counters to settle.
	deadline := time.Now().Add(10 * time.Second)
	for l.Stats().Records != res.SentRecords && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := writeReport(o.report, res); err != nil {
		return err
	}

	st := l.Stats()
	engRecords := int64(eng.Stats().DayRecords)
	var faults []string
	if res.SentRecords == 0 {
		faults = append(faults, "drove zero records")
	}
	if res.AckedRecords != res.SentRecords {
		faults = append(faults, fmt.Sprintf("acked %d of %d sent", res.AckedRecords, res.SentRecords))
	}
	if st.SheddedRecords != 0 || st.RejectedRecords != 0 || st.MalformedFrames != 0 {
		faults = append(faults, fmt.Sprintf("listener lost records: shed %d, rejected %d, malformed %d",
			st.SheddedRecords, st.RejectedRecords, st.MalformedFrames))
	}
	if st.Records != res.SentRecords {
		faults = append(faults, fmt.Sprintf("listener delivered %d of %d sent", st.Records, res.SentRecords))
	}
	if engRecords != res.SentRecords {
		faults = append(faults, fmt.Sprintf("engine holds %d of %d sent", engRecords, res.SentRecords))
	}
	if len(faults) > 0 {
		return fmt.Errorf("selftest failed: %s", strings.Join(faults, "; "))
	}
	fmt.Fprintf(os.Stderr, "selftest ok: %d records at %.0f rec/s, p99 %dµs, zero loss\n",
		res.SentRecords, res.AchievedRecS, res.P99Micros)
	return nil
}
