package repro

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (DESIGN.md §3 maps each benchmark to its artifact). Run with
//
//	go test -bench=. -benchmem
//
// Numbers beyond ns/op are attached via b.ReportMetric: e.g. the LANL
// challenge TDR/FNR (Table III) and the Figure 3 separation. The rendered
// artifacts themselves are printed by cmd/benchreport and recorded in
// EXPERIMENTS.md; use -v to see them logged here too.

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/eval"
	"repro/internal/histogram"
	"repro/internal/profile"
	"repro/internal/regression"
)

func benchBase() time.Time { return time.Date(2014, 2, 13, 0, 0, 0, 0, time.UTC) }

// Shared expensive fixtures: the two full pipeline runs used by the
// artifact benchmarks. They are built once, outside the timed loops.
var (
	benchMu   sync.Mutex
	benchLANL *eval.LANLRun
	benchEnt  *eval.EnterpriseRun
)

func lanlFixture(b *testing.B) *eval.LANLRun {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if benchLANL == nil {
		benchLANL = eval.RunLANL(eval.ScaleSmall, 21)
	}
	return benchLANL
}

func entFixture(b *testing.B) *eval.EnterpriseRun {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if benchEnt == nil {
		run, err := eval.RunEnterprise(eval.ScaleSmall, 21)
		if err != nil {
			b.Fatal(err)
		}
		benchEnt = run
	}
	return benchEnt
}

// ---- Tables ----

func BenchmarkTable1_ChallengeCases(b *testing.B) {
	run := lanlFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eval.Table1(run)
	}
	b.StopTimer()
	b.Log("\n" + eval.Table1(run).String())
}

func BenchmarkTable2_HistogramParams(b *testing.B) {
	run := lanlFixture(b)
	b.ResetTimer()
	var rows []eval.Table2Row
	for i := 0; i < b.N; i++ {
		rows, _ = eval.Table2(run)
	}
	b.StopTimer()
	for _, r := range rows {
		if r.BinWidth == 10 && r.Threshold == 0.06 {
			b.ReportMetric(float64(r.MaliciousTest), "malpairs_test")
			b.ReportMetric(float64(r.AllTestPairs), "allpairs_test")
		}
	}
	_, tab := eval.Table2(run)
	b.Log("\n" + tab.String())
}

func BenchmarkTable3_LANLResults(b *testing.B) {
	run := lanlFixture(b)
	b.ResetTimer()
	var res eval.Table3Result
	for i := 0; i < b.N; i++ {
		res, _ = eval.Table3(run)
	}
	b.StopTimer()
	tot := res.Totals()
	b.ReportMetric(tot.TDR()*100, "TDR%")
	b.ReportMetric(tot.FDR()*100, "FDR%")
	b.ReportMetric(tot.FNR()*100, "FNR%")
	_, tab := eval.Table3(run)
	b.Log("\n" + tab.String())
}

// ---- Figures ----

func BenchmarkFigure2_DataReduction(b *testing.B) {
	run := lanlFixture(b)
	b.ResetTimer()
	var pts []eval.Figure2Point
	for i := 0; i < b.N; i++ {
		pts, _ = eval.Figure2(run)
	}
	b.StopTimer()
	if len(pts) > 0 {
		b.ReportMetric(float64(pts[0].All), "domains_all")
		b.ReportMetric(float64(pts[0].Rare), "domains_rare")
	}
	_, tab := eval.Figure2(run)
	b.Log("\n" + tab.String())
}

func BenchmarkFigure3_TimingCDF(b *testing.B) {
	run := lanlFixture(b)
	b.ResetTimer()
	var res eval.Figure3Result
	for i := 0; i < b.N; i++ {
		res, _ = eval.Figure3(run)
	}
	b.StopTimer()
	b.ReportMetric(res.MalMal.At(160)*100, "malmal_160s%")
	b.ReportMetric(res.MalLegit.At(160)*100, "mallegit_160s%")
	_, tab := eval.Figure3(run)
	b.Log("\n" + tab.String())
}

func BenchmarkFigure4_BPTrace(b *testing.B) {
	run := lanlFixture(b)
	b.ResetTimer()
	var res eval.Figure4Result
	for i := 0; i < b.N; i++ {
		res, _ = eval.Figure4(run)
	}
	b.StopTimer()
	if res.Result != nil {
		b.ReportMetric(float64(len(res.Result.Detections)), "detections")
		b.ReportMetric(float64(res.Result.Iterations), "iterations")
	}
	_, tab := eval.Figure4(run)
	b.Log("\n" + tab.String() + "\n" + res.DOT)
}

func BenchmarkFigure5_ScoreCDF(b *testing.B) {
	run := entFixture(b)
	b.ResetTimer()
	var res eval.Figure5Result
	for i := 0; i < b.N; i++ {
		res, _ = eval.Figure5(run)
	}
	b.StopTimer()
	b.ReportMetric(res.Reported.Quantile(0.5), "reported_median")
	b.ReportMetric(res.Legitimate.Quantile(0.5), "legit_median")
	_, tab := eval.Figure5(run)
	b.Log("\n" + tab.String())
}

func BenchmarkFigure6a_CCSweep(b *testing.B) {
	run := entFixture(b)
	b.ResetTimer()
	var pts []eval.SweepPoint
	for i := 0; i < b.N; i++ {
		pts, _ = eval.Figure6a(run)
	}
	b.StopTimer()
	if len(pts) > 0 {
		b.ReportMetric(float64(pts[0].Breakdown.Detected()), "detected@0.40")
		b.ReportMetric(pts[0].Breakdown.TDR()*100, "TDR%@0.40")
	}
	_, tab := eval.Figure6a(run)
	b.Log("\n" + tab.String())
}

func BenchmarkFigure6b_NoHintSweep(b *testing.B) {
	run := entFixture(b)
	b.ResetTimer()
	var pts []eval.SweepPoint
	for i := 0; i < b.N; i++ {
		pts, _ = eval.Figure6b(run)
	}
	b.StopTimer()
	if len(pts) > 0 {
		b.ReportMetric(float64(pts[0].Breakdown.Detected()), "detected@0.33")
		b.ReportMetric(pts[0].Breakdown.NDR()*100, "NDR%@0.33")
	}
	_, tab := eval.Figure6b(run)
	b.Log("\n" + tab.String())
}

func BenchmarkFigure6c_SOCHintsSweep(b *testing.B) {
	run := entFixture(b)
	b.ResetTimer()
	var pts []eval.SweepPoint
	for i := 0; i < b.N; i++ {
		pts, _ = eval.Figure6c(run)
	}
	b.StopTimer()
	if len(pts) > 0 {
		b.ReportMetric(float64(pts[0].Breakdown.Detected()), "detected@0.33")
	}
	_, tab := eval.Figure6c(run)
	b.Log("\n" + tab.String())
}

func BenchmarkFigure7_NoHintCommunity(b *testing.B) {
	run := entFixture(b)
	b.ResetTimer()
	var res eval.CommunityResult
	for i := 0; i < b.N; i++ {
		res, _ = eval.Figure7(run)
	}
	b.StopTimer()
	b.ReportMetric(float64(len(res.Domains)), "domains")
	b.ReportMetric(float64(len(res.Hosts)), "hosts")
	_, tab := eval.Figure7(run)
	b.Log("\n" + tab.String() + "\n" + res.DOT)
}

func BenchmarkFigure8_SOCCommunity(b *testing.B) {
	run := entFixture(b)
	b.ResetTimer()
	var res eval.CommunityResult
	for i := 0; i < b.N; i++ {
		res, _ = eval.Figure8(run)
	}
	b.StopTimer()
	b.ReportMetric(float64(len(res.Domains)), "domains")
	_, tab := eval.Figure8(run)
	b.Log("\n" + tab.String() + "\n" + res.DOT)
}

// ---- Ablations (DESIGN.md §6) ----

func BenchmarkAblation_Detectors(b *testing.B) {
	b.ResetTimer()
	var res []eval.AblationDetectorResult
	for i := 0; i < b.N; i++ {
		res, _ = eval.AblationDetectors(5, 40)
	}
	b.StopTimer()
	for _, r := range res {
		if r.Name == "dynamic-histogram" {
			b.ReportMetric(r.OutlierRecall*100, "dyn_outlier_recall%")
		}
		if r.Name == "stddev" {
			b.ReportMetric(r.OutlierRecall*100, "std_outlier_recall%")
		}
	}
	_, tab := eval.AblationDetectors(5, 40)
	b.Log("\n" + tab.String())
}

func BenchmarkAblation_Features(b *testing.B) {
	run := entFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eval.AblationFeatures(run); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	_, tab, _ := eval.AblationFeatures(run)
	b.Log("\n" + tab.String())
}

func BenchmarkAblation_Evasion(b *testing.B) {
	b.ResetTimer()
	var pts []eval.EvasionPoint
	for i := 0; i < b.N; i++ {
		pts, _ = eval.AblationEvasion(3, 200)
	}
	b.StopTimer()
	for _, p := range pts {
		if p.JitterSeconds == 5 {
			b.ReportMetric(p.DetectionRate*100, "detect%@5s")
		}
		if p.JitterSeconds == 300 {
			b.ReportMetric(p.DetectionRate*100, "detect%@300s")
		}
	}
	_, tab := eval.AblationEvasion(3, 200)
	b.Log("\n" + tab.String())
}

func BenchmarkAblation_DistanceMetric(b *testing.B) {
	b.ResetTimer()
	var pts []eval.DistanceMetricPoint
	for i := 0; i < b.N; i++ {
		pts, _ = eval.AblationDistanceMetric(4, 60)
	}
	b.StopTimer()
	if len(pts) == 2 {
		b.ReportMetric(pts[1].Agreement*100, "l1_agreement%")
	}
	_, tab := eval.AblationDistanceMetric(4, 60)
	b.Log("\n" + tab.String())
}

func BenchmarkAblation_RareRestriction(b *testing.B) {
	run := lanlFixture(b)
	b.ResetTimer()
	var res eval.RareReductionResult
	for i := 0; i < b.N; i++ {
		res, _ = eval.AblationRareRestriction(run)
	}
	b.StopTimer()
	b.ReportMetric(res.Factor, "reduction_x")
	_, tab := eval.AblationRareRestriction(run)
	b.Log("\n" + tab.String())
}

func BenchmarkDetectionClusters(b *testing.B) {
	run := entFixture(b)
	b.ResetTimer()
	var cl []Cluster
	for i := 0; i < b.N; i++ {
		cl, _ = eval.Clusters(run)
	}
	b.StopTimer()
	b.ReportMetric(float64(len(cl)), "clusters")
	_, tab := eval.Clusters(run)
	b.Log("\n" + tab.String())
}

func BenchmarkGenerality(b *testing.B) {
	b.ResetTimer()
	var res eval.GeneralityResult
	for i := 0; i < b.N; i++ {
		res, _ = eval.Generality(eval.ScaleSmall, 21)
	}
	b.StopTimer()
	b.ReportMetric(float64(res.ProxyVisible), "proxy_visible")
	b.ReportMetric(float64(res.FlowVisible), "flow_visible")
	b.ReportMetric(float64(res.Campaigns), "campaigns")
	_, tab := eval.Generality(eval.ScaleSmall, 21)
	b.Log("\n" + tab.String())
}

func BenchmarkLANLRobustness(b *testing.B) {
	b.ResetTimer()
	var sum eval.SeedSummary
	for i := 0; i < b.N; i++ {
		sum, _ = eval.LANLRobustness(eval.ScaleSmall, 100, 3)
	}
	b.StopTimer()
	b.ReportMetric(sum.TDRMean*100, "TDR_mean%")
	b.ReportMetric(sum.FNRMean*100, "FNR_mean%")
	_, tab := eval.LANLRobustness(eval.ScaleSmall, 100, 3)
	b.Log("\n" + tab.String())
}

// ---- End-to-end pipeline throughput ----

func BenchmarkLANLPipeline_FullRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = eval.RunLANL(eval.ScaleSmall, int64(100+i))
	}
}

func BenchmarkEnterprisePipeline_FullRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunEnterprise(eval.ScaleSmall, int64(100+i)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Hot-path micro-benchmarks ----

func BenchmarkDynamicHistogramAnalyze(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	intervals := make([]float64, 100)
	for i := range intervals {
		intervals[i] = 600 + rng.Float64()*8 - 4
	}
	cfg := histogram.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		histogram.Analyze(intervals, cfg)
	}
}

func BenchmarkOnlineObserve(b *testing.B) {
	o := histogram.NewOnline(histogram.DefaultConfig())
	base := benchBase()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Observe(base.Add(time.Duration(i) * 10 * time.Minute))
		if i%1000 == 999 {
			o.Reset()
		}
	}
}

func BenchmarkJeffreyDivergence(b *testing.B) {
	h := histogram.Build([]float64{600, 601, 599, 600, 3600, 602}, 10)
	ref := histogram.PeriodicReference(600, h.Total)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		histogram.JeffreyDivergence(h, ref, 10)
	}
}

func BenchmarkSnapshotBuild(b *testing.B) {
	g := NewLANLGenerator(LANLGeneratorConfig{
		Seed: 3, Hosts: 60, Servers: 4, PopularDomains: 80,
		NewRarePerDay: 15, QueriesPerHostDay: 20,
	})
	visits, _ := ReduceDNS(g.Day(0))
	hist := NewHistory()
	day := g.DayTime(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewSnapshot(day, visits, hist, 10)
	}
}

func BenchmarkBeliefPropagationDay(b *testing.B) {
	run := lanlFixture(b)
	// Reuse the figure-4 campaign day for a realistic BP workload.
	res, _ := eval.Figure4(run)
	rep := run.ChallengeReports[res.Campaign.ID]
	hints := run.HintIPs(res.Campaign)
	cc := run.Pipe.CC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BeliefPropagation(rep.Snapshot, hints, nil, cc, AdditiveScorer{}, BPConfig{
			ScoreThreshold: 0.25, MaxIterations: 5,
		})
	}
}

// ---- Day-close stages (the PR 3 concurrency tentpole) ----
//
// Both benchmarks below resolve their worker pools from GOMAXPROCS
// (Workers = 0), so `-cpu 1,4` compares the sequential and parallel
// day-close paths on identical work.

var (
	dayCloseOnce   sync.Once
	dayCloseDay    time.Time
	dayCloseVisits []Visit
	dayCloseHist   *History
	dayCloseDet    *CCDetector
)

// dayCloseFixture prepares one realistic operation day: a trained history
// plus the day's reduced visits, so each benchmark iteration replays the
// pure analytics (no history commit, so every iteration sees identical
// work).
func dayCloseFixture() {
	dayCloseOnce.Do(func() {
		g := NewEnterpriseGenerator(EnterpriseGeneratorConfig{
			Seed: 9, TrainingDays: 5, OperationDays: 1,
			Hosts: 300, PopularDomains: 150, NewRarePerDay: 80,
			BenignAutoPerDay: 10, Campaigns: 4,
		})
		reg := NewWHOISRegistry()
		PopulateWHOIS(reg, g.Truth, g.RareRegistrations(), g.DayTime(g.NumDays()))
		hist := NewHistory()
		for d := 0; d < g.Config().TrainingDays; d++ {
			visits, _ := ReduceProxy(g.Day(d), g.DHCPMap(d))
			NewSnapshot(g.DayTime(d), visits, hist, 10).Commit(hist)
		}
		opDay := g.Config().TrainingDays
		dayCloseDay = g.DayTime(opDay)
		dayCloseVisits, _ = ReduceProxy(g.Day(opDay), g.DHCPMap(opDay))
		dayCloseHist = hist
		dayCloseDet = NewCCDetector(&FeatureExtractor{Hist: hist, Whois: reg})
	})
}

// BenchmarkDayClose measures the analytics half of a streaming rollover —
// snapshot build, periodicity profiling, feature extraction — over one
// operation day.
func BenchmarkDayClose(b *testing.B) {
	dayCloseFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := NewSnapshotParallel(dayCloseDay, dayCloseVisits, dayCloseHist, 10, 0)
		ads := dayCloseDet.FindAutomatedParallel(snap, 0)
		dayCloseDet.FillFeaturesParallel(ads, dayCloseDay, 0)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*float64(len(dayCloseVisits))/b.Elapsed().Seconds(), "visits/s")
}

// BenchmarkDayCloseIncremental measures the same day-close analytics as
// BenchmarkDayClose, but from per-shard incremental partials maintained
// during ingest (the streaming engine's rollover path since the
// incremental-snapshot change): the snapshot stage is an O(domains) merge
// + classification instead of a full O(visits) re-reduce of the day, so
// the two benchmarks bracket exactly what incremental maintenance removes
// from the rollover.
func BenchmarkDayCloseIncremental(b *testing.B) {
	dayCloseFixture()
	// Rebuild the partials for every iteration, untimed (that cost rides
	// the ingest hot path in production): reusing one set across
	// iterations would hand later closes pre-sorted rare timestamps and
	// understate the merge. One builder per shard, visits routed by the
	// reference (host, domain) pair hash, seq = arrival index.
	const shards = 4
	buildParts := func() []*profile.IncrementalBuilder {
		parts := make([]*profile.IncrementalBuilder, shards)
		for i := range parts {
			parts[i] = profile.NewIncrementalBuilder()
		}
		for i := range dayCloseVisits {
			v := &dayCloseVisits[i]
			parts[profile.PairPartition(v.Host, v.Domain, shards)].Add(uint64(i), v)
		}
		return parts
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		parts := buildParts()
		b.StartTimer()
		snap := MergeSnapshotParallel(dayCloseDay, parts, dayCloseHist, 10, 0)
		ads := dayCloseDet.FindAutomatedParallel(snap, 0)
		dayCloseDet.FillFeaturesParallel(ads, dayCloseDay, 0)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*float64(len(dayCloseVisits))/b.Elapsed().Seconds(), "visits/s")
}

// BenchmarkBeliefProp measures one no-hint belief propagation run on a
// trained enterprise day, seeded by its own C&C detections — the
// Compute_SimScore/Detect_C&C fan that dominates Algorithm 1.
func BenchmarkBeliefProp(b *testing.B) {
	run := entFixture(b)
	var rep *EnterpriseDayReport
	reps := run.OperationReports()
	for i := range reps {
		if len(reps[i].CC) > 0 {
			rep = &reps[i]
			break
		}
	}
	if rep == nil {
		b.Skip("no operation day with C&C detections")
	}
	var seeds []string
	for _, ad := range rep.CC {
		seeds = append(seeds, ad.Domain)
	}
	det := run.Pipe.Detector()
	sim := run.Pipe.SimilarityScorer()
	cfg := BPConfig{ScoreThreshold: run.Pipe.SimThreshold(), MaxIterations: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BeliefPropagation(rep.Snapshot, nil, seeds, det, sim, cfg)
	}
}

func BenchmarkFindAutomatedSequential(b *testing.B) {
	run := entFixture(b)
	reps := run.OperationReports()
	if len(reps) == 0 {
		b.Skip("no operation days")
	}
	det := run.Pipe.Detector()
	snap := reps[0].Snapshot
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = det.FindAutomated(snap)
	}
}

func BenchmarkFindAutomatedParallel(b *testing.B) {
	run := entFixture(b)
	reps := run.OperationReports()
	if len(reps) == 0 {
		b.Skip("no operation days")
	}
	det := run.Pipe.Detector()
	snap := reps[0].Snapshot
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = det.FindAutomatedParallel(snap, 0)
	}
}

func BenchmarkHistorySaveLoad(b *testing.B) {
	run := entFixture(b)
	hist := run.Pipe.History()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := hist.Save(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := LoadHistory(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRegressionFit(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n, p := 500, 8
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = make([]float64, p)
		for j := range x[i] {
			x[i][j] = rng.NormFloat64()
			y[i] += x[i][j] * float64(j)
		}
		y[i] += rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := regression.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
